#include "index/kd_tree_maintainer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/binary_io.h"
#include "index/partition_io.h"

namespace fairidx {

namespace {

// Drift metric: how far the region's calibration gap moved since the
// snapshot. This is each region's ENCE contribution (up to the global
// normalisation), so a bound on it bounds the region's stake in the
// partition-level ENCE drift.
double DriftOf(const RegionAggregate& now, const RegionAggregate& then) {
  return std::abs(now.Miscalibration() - then.Miscalibration());
}

}  // namespace

Result<KdTreeMaintainer> KdTreeMaintainer::Build(
    const Grid& grid, const GridAggregates& aggregates,
    const KdTreeOptions& options) {
  if (aggregates.rows() != grid.rows() || aggregates.cols() != grid.cols()) {
    return InvalidArgumentError(
        "KdTreeMaintainer: aggregates/grid shape mismatch");
  }
  FAIRIDX_ASSIGN_OR_RETURN(
      KdSubtreeRecording recording,
      BuildRecordedKdSubtree(aggregates, grid.FullRect(), options.height,
                             options));
  KdTreeMaintainer out(grid, options);
  AppendRecording(recording, aggregates, &out.nodes_, &out.leaf_nodes_,
                  &out.tree_.result.regions);
  out.tree_.num_split_scans = recording.num_split_scans;
  FAIRIDX_ASSIGN_OR_RETURN(
      Partition partition,
      Partition::FromRects(grid, out.tree_.result.regions,
                           std::max(1, options.num_threads)));
  out.tree_.result.partition = std::move(partition);
  return out;
}

double KdTreeMaintainer::MaxLeafDrift(
    Span<RegionAggregate> fresh_leaf_aggregates) const {
  if (fresh_leaf_aggregates.size() != leaf_nodes_.size()) return 0.0;
  double max_drift = 0.0;
  for (size_t i = 0; i < leaf_nodes_.size(); ++i) {
    const double drift = DriftOf(fresh_leaf_aggregates[i],
                                 nodes_[leaf_nodes_[i]].snapshot);
    if (drift > max_drift) max_drift = drift;
  }
  return max_drift;
}

void KdTreeMaintainer::DriftPrepass(Span<RegionAggregate> leaf_aggregates,
                                    double drift_bound,
                                    std::vector<RegionAggregate>* fresh,
                                    RefineScratch* scratch) const {
  const size_t num_nodes = nodes_.size();
  fresh->assign(num_nodes, RegionAggregate{});
  scratch->drifted.assign(num_nodes, 0);
  scratch->subtree_dirty.assign(num_nodes, 0);
  scratch->subtree_end.resize(num_nodes);
  for (size_t i = 0; i < leaf_nodes_.size(); ++i) {
    (*fresh)[leaf_nodes_[i]] = leaf_aggregates[i];
  }
  for (size_t i = num_nodes; i-- > 0;) {
    const Node& node = nodes_[i];
    bool dirty_below = false;
    if (node.node.is_leaf()) {
      scratch->subtree_end[i] = static_cast<int>(i) + 1;
    } else {
      (*fresh)[i] = (*fresh)[node.node.left];
      (*fresh)[i] += (*fresh)[node.node.right];
      scratch->subtree_end[i] = scratch->subtree_end[node.node.right];
      dirty_below = scratch->subtree_dirty[node.node.left] ||
                    scratch->subtree_dirty[node.node.right];
    }
    const bool can_resplit =
        node.node.remaining_height > 0 && node.node.rect.num_cells() > 1;
    const bool drifted =
        can_resplit && DriftOf((*fresh)[i], node.snapshot) > drift_bound;
    scratch->drifted[i] = drifted ? 1 : 0;
    scratch->subtree_dirty[i] = (drifted || dirty_below) ? 1 : 0;
  }
}

bool KdTreeMaintainer::WouldRefine(
    Span<RegionAggregate> fresh_leaf_aggregates,
    const KdRefineOptions& options) const {
  if (fresh_leaf_aggregates.size() != leaf_nodes_.size() ||
      nodes_.empty() || options.drift_bound < 0.0) {
    return false;
  }
  std::vector<RegionAggregate> fresh;
  RefineScratch scratch;
  DriftPrepass(fresh_leaf_aggregates, options.drift_bound, &fresh,
               &scratch);
  return scratch.subtree_dirty[0] != 0;
}

void KdTreeMaintainer::AppendRecording(const KdSubtreeRecording& recording,
                                       const GridAggregates& aggregates,
                                       std::vector<Node>* nodes,
                                       std::vector<int>* leaf_nodes,
                                       std::vector<CellRect>* leaves) {
  const size_t offset = nodes->size();
  // One batched leaf query; internal snapshots are then the bottom-up sums
  // left + right (RegionAggregate is additive over disjoint cell sets).
  // Refine recomputes fresh aggregates with the IDENTICAL scheme, so on
  // unchanged aggregates every node's drift is exactly 0.
  const std::vector<RegionAggregate> leaf_aggregates =
      aggregates.QueryMany(recording.leaves);
  size_t leaf_index = 0;
  for (const KdTreeNode& node : recording.nodes) {
    Node entry;
    entry.node = node;
    if (node.left >= 0) {
      entry.node.left = node.left + static_cast<int>(offset);
    }
    if (node.right >= 0) {
      entry.node.right = node.right + static_cast<int>(offset);
    }
    if (entry.node.is_leaf()) {
      entry.snapshot = leaf_aggregates[leaf_index++];
      leaf_nodes->push_back(static_cast<int>(nodes->size()));
      leaves->push_back(node.rect);
    }
    nodes->push_back(std::move(entry));
  }
  // Children precede parents when walking preorder indices in reverse.
  for (size_t i = nodes->size(); i-- > offset;) {
    Node& entry = (*nodes)[i];
    if (entry.node.is_leaf()) continue;
    entry.snapshot = (*nodes)[entry.node.left].snapshot;
    entry.snapshot += (*nodes)[entry.node.right].snapshot;
  }
}

void KdTreeMaintainer::ApplyPatchInPlace(const Patch& patch,
                                         const GridAggregates& aggregates,
                                         KdRefineStats* stats) {
  const std::vector<RegionAggregate> leaf_aggregates =
      aggregates.QueryMany(patch.recording.leaves);
  size_t leaf_index = 0;
  int leaf_pos = patch.leaf_begin;
  for (size_t j = 0; j < patch.recording.nodes.size(); ++j) {
    const KdTreeNode& rec_node = patch.recording.nodes[j];
    Node& slot = nodes_[static_cast<size_t>(patch.begin) + j];
    slot.node = rec_node;
    if (rec_node.left >= 0) {
      slot.node.left += patch.begin;
      slot.node.right += patch.begin;
      continue;
    }
    slot.snapshot = leaf_aggregates[leaf_index++];
    leaf_nodes_[static_cast<size_t>(leaf_pos)] =
        patch.begin + static_cast<int>(j);
    CellRect& region = tree_.result.regions[static_cast<size_t>(leaf_pos)];
    if (!(region == rec_node.rect)) {
      stats->changed = true;
      region = rec_node.rect;
      // Region id == leaf position, unchanged by a same-size patch, so
      // only the moved leaves' cells are rewritten: O(patch area), no
      // global partition rebuild. (An unmoved leaf's cells already carry
      // leaf_pos, and no other — disjoint — patch touches them.)
      tree_.result.partition.AssignRect(grid_.cols(), rec_node.rect,
                                        leaf_pos);
    }
    ++leaf_pos;
  }
  // Internal snapshots: bottom-up over the patched range (children first
  // in reverse preorder).
  for (size_t j = static_cast<size_t>(patch.end);
       j-- > static_cast<size_t>(patch.begin);) {
    Node& entry = nodes_[j];
    if (entry.node.is_leaf()) continue;
    entry.snapshot = nodes_[entry.node.left].snapshot;
    entry.snapshot += nodes_[entry.node.right].snapshot;
  }
}

Status KdTreeMaintainer::SpliceWithPatches(const std::vector<Patch>& patches,
                                           const GridAggregates& aggregates,
                                           KdRefineStats* stats) {
  // Old index -> new index: every kept index shifts by the cumulative
  // size delta of the patches fully before it. Kept nodes never point
  // INTO a patch range (only exactly at its root, which maps like a kept
  // index since the replacement starts at the same shifted position).
  auto map_index = [&patches](int old_index) {
    int shift = 0;
    for (const Patch& patch : patches) {
      if (patch.end <= old_index) {
        shift += static_cast<int>(patch.recording.nodes.size()) -
                 (patch.end - patch.begin);
      } else {
        break;
      }
    }
    return old_index + shift;
  };

  std::vector<Node> new_nodes;
  std::vector<int> new_leaf_nodes;
  std::vector<CellRect> new_leaves;
  new_nodes.reserve(nodes_.size());
  new_leaf_nodes.reserve(leaf_nodes_.size());
  new_leaves.reserve(tree_.result.regions.size());

  // Kept range copier: verbatim nodes with remapped children.
  auto append_kept = [&](int old_begin, int old_end) {
    for (int i = old_begin; i < old_end; ++i) {
      Node entry = nodes_[static_cast<size_t>(i)];
      if (entry.node.is_leaf()) {
        new_leaf_nodes.push_back(static_cast<int>(new_nodes.size()));
        new_leaves.push_back(entry.node.rect);
      } else {
        entry.node.left = map_index(entry.node.left);
        entry.node.right = map_index(entry.node.right);
      }
      new_nodes.push_back(std::move(entry));
    }
  };

  int old_pos = 0;
  for (const Patch& patch : patches) {
    append_kept(old_pos, patch.begin);
    AppendRecording(patch.recording, aggregates, &new_nodes,
                    &new_leaf_nodes, &new_leaves);
    old_pos = patch.end;
  }
  append_kept(old_pos, static_cast<int>(nodes_.size()));

  stats->changed = new_leaves != tree_.result.regions;
  if (stats->changed) {
    // O(changed area) publication: the current cell map equals
    // FromRects(old regions) — the maintainer invariant — so only the
    // positions whose (rect, id) pair changed need their cells rewritten.
    // New leaves are disjoint and tile the grid (they come from a valid
    // splice), which is exactly DiffRects' premise; the patched map is
    // bit-identical to a full FromRects over the new leaf list
    // (tests/kd_tree_maintainer_test.cc pins this differentially).
    tree_.result.partition.ApplyRectPatch(
        grid_.cols(),
        Partition::DiffRects(tree_.result.regions, new_leaves),
        static_cast<int>(new_leaves.size()));
    tree_.result.regions = std::move(new_leaves);
    stats->patched_splice = true;
  }
  nodes_ = std::move(new_nodes);
  leaf_nodes_ = std::move(new_leaf_nodes);
  return Status::Ok();
}

Result<KdRefineStats> KdTreeMaintainer::Refine(
    const GridAggregates& aggregates, const KdRefineOptions& options) {
  if (aggregates.rows() != grid_.rows() ||
      aggregates.cols() != grid_.cols()) {
    return InvalidArgumentError(
        "KdTreeMaintainer: aggregates/grid shape mismatch");
  }
  if (options.drift_bound < 0.0) {
    return InvalidArgumentError(
        "KdTreeMaintainer: drift bound must be >= 0");
  }

  // Pre-pass: fresh per-node aggregates via the same batched-leaf +
  // bottom-up-sum scheme the snapshots were built with (one prefetched
  // QueryMany instead of a scattered Query per node, and bit-identical
  // drift-0 behaviour on unchanged aggregates), folded together with the
  // drift flags, dirty-subtree marks and preorder subtree extents.
  const size_t num_nodes = nodes_.size();
  std::vector<RegionAggregate> fresh;
  RefineScratch scratch;
  DriftPrepass(aggregates.QueryMany(tree_.result.regions),
               options.drift_bound, &fresh, &scratch);

  KdRefineStats stats;
  stats.nodes_checked = static_cast<int>(num_nodes);
  if (num_nodes == 0 || !scratch.subtree_dirty[0]) {
    return stats;  // Nothing drifted anywhere: full no-op.
  }

  // Topmost drifted subtree roots, in preorder (disjoint by construction:
  // the descent stops at the first drifted node on each path).
  std::vector<int> roots;
  {
    std::vector<int> stack;
    stack.push_back(0);
    while (!stack.empty()) {
      const int i = stack.back();
      stack.pop_back();
      if (!scratch.subtree_dirty[i]) continue;
      if (scratch.drifted[i]) {
        roots.push_back(i);
        continue;
      }
      const Node& node = nodes_[static_cast<size_t>(i)];
      if (node.node.is_leaf()) continue;
      stack.push_back(node.node.right);  // Left pops first: preorder.
      stack.push_back(node.node.left);
    }
  }

  // Re-split each drifted subtree on the fresh aggregates — the same
  // decisions a full rebuild would take there.
  std::vector<Patch> patches;
  patches.reserve(roots.size());
  bool in_place = true;
  for (int root : roots) {
    const Node& node = nodes_[static_cast<size_t>(root)];
    Patch patch;
    patch.begin = root;
    patch.end = scratch.subtree_end[root];
    FAIRIDX_ASSIGN_OR_RETURN(
        patch.recording,
        BuildRecordedKdSubtree(aggregates, node.node.rect,
                               node.node.remaining_height, options_));
    ++stats.subtrees_rebuilt;
    stats.num_split_scans += patch.recording.num_split_scans;
    patch.leaf_begin = static_cast<int>(
        std::lower_bound(leaf_nodes_.begin(), leaf_nodes_.end(),
                         patch.begin) -
        leaf_nodes_.begin());
    const int leaf_end = static_cast<int>(
        std::lower_bound(leaf_nodes_.begin(), leaf_nodes_.end(),
                         patch.end) -
        leaf_nodes_.begin());
    patch.leaf_count = leaf_end - patch.leaf_begin;
    in_place = in_place &&
               patch.recording.nodes.size() ==
                   static_cast<size_t>(patch.end - patch.begin) &&
               patch.recording.leaves.size() ==
                   static_cast<size_t>(patch.leaf_count);
    patches.push_back(std::move(patch));
  }

  if (in_place) {
    // Same-size replacements: nothing outside the patches moves, so the
    // tree, the leaf list and the partition are all patched in place —
    // O(drifted area), no O(UV) rebuild.
    for (const Patch& patch : patches) {
      ApplyPatchInPlace(patch, aggregates, &stats);
    }
    stats.patched_in_place = true;
    return stats;
  }
  FAIRIDX_RETURN_IF_ERROR(SpliceWithPatches(patches, aggregates, &stats));
  return stats;
}

namespace {

constexpr uint32_t kKdMaintainerMagic = 0x46584B4Du;  // "FXKM"
// v2 drops the trailing serialized partition: the maintainer invariant is
// cell map == FromRects(regions), so Restore rebuilds it from the region
// rects — blobs shrink from O(grid) to O(tree), which is what keeps delta
// checkpoints O(changed). v1 blobs (embedded partition) still restore.
constexpr uint32_t kKdMaintainerVersion = 2;

void PutRect(BinaryWriter* out, const CellRect& rect) {
  out->PutI32(rect.row_begin);
  out->PutI32(rect.row_end);
  out->PutI32(rect.col_begin);
  out->PutI32(rect.col_end);
}

Result<CellRect> ReadRect(BinaryReader* in) {
  CellRect rect;
  FAIRIDX_ASSIGN_OR_RETURN(rect.row_begin, in->ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(rect.row_end, in->ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(rect.col_begin, in->ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(rect.col_end, in->ReadI32());
  return rect;
}

void PutAggregate(BinaryWriter* out, const RegionAggregate& agg) {
  out->PutDouble(agg.count);
  out->PutDouble(agg.sum_labels);
  out->PutDouble(agg.sum_scores);
  out->PutDouble(agg.sum_residuals);
  out->PutDouble(agg.sum_cell_abs_miscalibration);
}

Result<RegionAggregate> ReadAggregate(BinaryReader* in) {
  RegionAggregate agg;
  FAIRIDX_ASSIGN_OR_RETURN(agg.count, in->ReadDouble());
  FAIRIDX_ASSIGN_OR_RETURN(agg.sum_labels, in->ReadDouble());
  FAIRIDX_ASSIGN_OR_RETURN(agg.sum_scores, in->ReadDouble());
  FAIRIDX_ASSIGN_OR_RETURN(agg.sum_residuals, in->ReadDouble());
  FAIRIDX_ASSIGN_OR_RETURN(agg.sum_cell_abs_miscalibration,
                           in->ReadDouble());
  return agg;
}

}  // namespace

std::string KdTreeMaintainer::Save() const {
  BinaryWriter out;
  out.PutU32(kKdMaintainerMagic);
  out.PutU32(kKdMaintainerVersion);
  out.PutI64(tree_.num_split_scans);
  out.PutU64(nodes_.size());
  for (const Node& node : nodes_) {
    PutRect(&out, node.node.rect);
    out.PutI32(node.node.left);
    out.PutI32(node.node.right);
    out.PutI32(node.node.remaining_height);
    PutAggregate(&out, node.snapshot);
  }
  out.PutU64(leaf_nodes_.size());
  for (int leaf : leaf_nodes_) out.PutI32(leaf);
  out.PutU64(tree_.result.regions.size());
  for (const CellRect& rect : tree_.result.regions) PutRect(&out, rect);
  return out.Release();
}

Result<KdTreeMaintainer> KdTreeMaintainer::Restore(
    const Grid& grid, const KdTreeOptions& options,
    const std::string& blob) {
  BinaryReader in(blob);
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t magic, in.ReadU32());
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t version, in.ReadU32());
  if (magic != kKdMaintainerMagic || version < 1 ||
      version > kKdMaintainerVersion) {
    return DataLossError("KdTreeMaintainer: bad magic or version");
  }
  KdTreeMaintainer maintainer(grid, options);
  FAIRIDX_ASSIGN_OR_RETURN(maintainer.tree_.num_split_scans, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_nodes, in.ReadU64());
  maintainer.nodes_.reserve(static_cast<size_t>(num_nodes));
  for (uint64_t i = 0; i < num_nodes; ++i) {
    Node node;
    FAIRIDX_ASSIGN_OR_RETURN(node.node.rect, ReadRect(&in));
    FAIRIDX_ASSIGN_OR_RETURN(node.node.left, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(node.node.right, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(node.node.remaining_height, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(node.snapshot, ReadAggregate(&in));
    const int n = static_cast<int>(num_nodes);
    if (node.node.left >= n || node.node.right >= n) {
      return DataLossError("KdTreeMaintainer: child index out of range");
    }
    maintainer.nodes_.push_back(node);
  }
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_leaves, in.ReadU64());
  maintainer.leaf_nodes_.reserve(static_cast<size_t>(num_leaves));
  for (uint64_t i = 0; i < num_leaves; ++i) {
    FAIRIDX_ASSIGN_OR_RETURN(const int32_t leaf, in.ReadI32());
    if (leaf < 0 || static_cast<uint64_t>(leaf) >= num_nodes) {
      return DataLossError("KdTreeMaintainer: leaf index out of range");
    }
    maintainer.leaf_nodes_.push_back(leaf);
  }
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_regions, in.ReadU64());
  if (num_regions != num_leaves) {
    return DataLossError(
        "KdTreeMaintainer: leaf and region counts disagree");
  }
  maintainer.tree_.result.regions.reserve(static_cast<size_t>(num_regions));
  for (uint64_t i = 0; i < num_regions; ++i) {
    FAIRIDX_ASSIGN_OR_RETURN(const CellRect rect, ReadRect(&in));
    maintainer.tree_.result.regions.push_back(rect);
  }
  if (version >= 2) {
    // v2 carries no partition bytes: rebuild the cell map from the leaf
    // rects, which the maintainer invariant guarantees reproduces the
    // saved map bit for bit (and validates coverage in the process).
    FAIRIDX_ASSIGN_OR_RETURN(
        maintainer.tree_.result.partition,
        Partition::FromRects(grid, maintainer.tree_.result.regions,
                             std::max(1, options.num_threads)));
  } else {
    FAIRIDX_ASSIGN_OR_RETURN(const std::string partition_bytes,
                             in.ReadString());
    FAIRIDX_ASSIGN_OR_RETURN(maintainer.tree_.result.partition,
                             ParsePartitionBinary(grid, partition_bytes));
  }
  if (in.remaining() != 0) {
    return DataLossError("KdTreeMaintainer: trailing bytes in blob");
  }
  return maintainer;
}

}  // namespace fairidx
