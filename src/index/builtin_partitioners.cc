// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Registry adapters for the index-layer partitioners: the structures that
// build straight from grid aggregates (median KD, fair KD, uniform grid,
// fair quadtree, STR slabs) plus the record-level zip-code baseline. Each
// adapter's Build is a thin shim over the algorithm's direct Build* entry
// point, so registry output is bit-identical to a direct call (the
// conformance suite in tests/partitioner_registry_test.cc pins this).
// The model-training algorithms (iterative, multi-objective) register from
// core/core_partitioners.cc.

#include <algorithm>
#include <memory>
#include <utility>

#include "index/fair_kd_tree.h"
#include "index/kd_tree_maintainer.h"
#include "index/median_kd_tree.h"
#include "index/partitioner.h"
#include "index/quadtree.h"
#include "index/quadtree_maintainer.h"
#include "index/str_partition.h"
#include "index/uniform_grid.h"

namespace fairidx {
namespace {

// Shared base for the two KD-tree adapters: translates the build options,
// runs the (fast, task-parallel) unrecorded build — or the recorded one
// when refine is requested — and keeps the maintainer for Refine.
class KdTreeAdapterBase : public Partitioner {
 public:
  Result<PartitionerOutput> Build(PartitionerContext& context) override {
    FAIRIDX_ASSIGN_OR_RETURN(const GridAggregates* aggregates,
                             Aggregates(context));
    const KdTreeOptions tree_options = TreeOptions(context.options());
    PartitionerOutput out;
    if (context.options().enable_refine) {
      FAIRIDX_ASSIGN_OR_RETURN(
          KdTreeMaintainer maintainer,
          KdTreeMaintainer::Build(context.dataset().grid(), *aggregates,
                                  tree_options));
      out.partition = maintainer.tree().result;
      maintainer_.emplace(std::move(maintainer));
    } else {
      FAIRIDX_ASSIGN_OR_RETURN(
          KdTreeResult tree,
          BuildKdTreePartition(context.dataset().grid(), *aggregates,
                               tree_options));
      out.partition = std::move(tree.result);
    }
    out.model_fits = context.initial_fits();
    return out;
  }

  // The serving layer's entry point: the same recorded maintainer build
  // as the enable_refine path, minus the dataset/model context (the
  // caller's aggregate stream already carries whatever scores the
  // objective reads).
  Result<const PartitionResult*> BuildFromAggregates(
      const Grid& grid, const GridAggregates& aggregates,
      const PartitionerBuildOptions& options) override {
    FAIRIDX_ASSIGN_OR_RETURN(
        KdTreeMaintainer maintainer,
        KdTreeMaintainer::Build(grid, aggregates, TreeOptions(options)));
    maintainer_.emplace(std::move(maintainer));
    return &maintainer_->tree().result;
  }

  Result<KdRefineStats> Refine(const GridAggregates& aggregates,
                               const KdRefineOptions& options) override {
    if (!maintainer_.has_value()) {
      return Partitioner::Refine(aggregates, options);
    }
    return maintainer_->Refine(aggregates, options);
  }

  const PartitionResult* maintained() const override {
    return maintainer_.has_value() ? &maintainer_->tree().result : nullptr;
  }

  Result<std::string> SaveMaintained() const override {
    if (!maintainer_.has_value()) {
      return Partitioner::SaveMaintained();
    }
    return maintainer_->Save();
  }

  Status RestoreMaintained(const Grid& grid,
                           const PartitionerBuildOptions& options,
                           const std::string& blob) override {
    FAIRIDX_ASSIGN_OR_RETURN(
        KdTreeMaintainer maintainer,
        KdTreeMaintainer::Restore(grid, TreeOptions(options), blob));
    maintainer_.emplace(std::move(maintainer));
    return Status::Ok();
  }

 protected:
  /// The aggregates this tree splits on.
  virtual Result<const GridAggregates*> Aggregates(
      PartitionerContext& context) = 0;
  /// The KD options this tree builds with.
  virtual KdTreeOptions TreeOptions(
      const PartitionerBuildOptions& options) const = 0;

 private:
  std::optional<KdTreeMaintainer> maintainer_;
};

class MedianKdTreePartitioner : public KdTreeAdapterBase {
 public:
  const char* name() const override { return "median_kd_tree"; }
  PartitionerCapabilities capabilities() const override {
    PartitionerCapabilities caps;
    caps.supports_refine = true;
    return caps;
  }

 protected:
  Result<const GridAggregates*> Aggregates(
      PartitionerContext& context) override {
    return context.CountAggregates();
  }
  KdTreeOptions TreeOptions(
      const PartitionerBuildOptions& options) const override {
    // Mirrors BuildMedianKdTree: count-balancing objective, defaults
    // elsewhere.
    KdTreeOptions tree_options;
    tree_options.height = options.height;
    tree_options.objective.kind = SplitObjectiveKind::kMedianCount;
    tree_options.num_threads = options.num_threads;
    return tree_options;
  }
};

class FairKdTreePartitioner : public KdTreeAdapterBase {
 public:
  const char* name() const override { return "fair_kd_tree"; }
  PartitionerCapabilities capabilities() const override {
    PartitionerCapabilities caps;
    caps.needs_initial_scores = true;
    caps.supports_refine = true;
    return caps;
  }

 protected:
  Result<const GridAggregates*> Aggregates(
      PartitionerContext& context) override {
    return context.ScoredAggregates();
  }
  KdTreeOptions TreeOptions(
      const PartitionerBuildOptions& options) const override {
    // Mirrors BuildFairKdTree's FairKdTreeOptions -> KdTreeOptions map.
    KdTreeOptions tree_options;
    tree_options.height = options.height;
    tree_options.objective = options.split_objective;
    tree_options.axis_policy = options.axis_policy;
    tree_options.early_stop_weighted_miscalibration =
        options.split_early_stop;
    tree_options.num_threads = options.num_threads;
    return tree_options;
  }
};

class UniformGridPartitioner : public Partitioner {
 public:
  const char* name() const override { return "grid_reweighting"; }
  PartitionerCapabilities capabilities() const override {
    return PartitionerCapabilities{};
  }
  Result<PartitionerOutput> Build(PartitionerContext& context) override {
    PartitionerOutput out;
    FAIRIDX_ASSIGN_OR_RETURN(
        out.partition,
        BuildUniformGridPartition(context.dataset().grid(),
                                  context.options().height));
    // The baseline's mitigation acts at training time, not indexing time.
    out.reweight_by_neighborhood = true;
    return out;
  }
};

class ZipCodesPartitioner : public Partitioner {
 public:
  const char* name() const override { return "zip_codes"; }
  PartitionerCapabilities capabilities() const override {
    PartitionerCapabilities caps;
    caps.needs_zip_codes = true;
    caps.produces_cell_partition = false;
    return caps;
  }
  Result<PartitionerOutput> Build(PartitionerContext& context) override {
    if (!context.dataset().has_zip_codes()) {
      return FailedPreconditionError(
          "zip_codes: dataset has no zip codes");
    }
    PartitionerOutput out;
    out.has_cell_partition = false;
    return out;
  }
};

class FairQuadtreePartitioner : public Partitioner {
 public:
  const char* name() const override { return "fair_quadtree"; }
  PartitionerCapabilities capabilities() const override {
    PartitionerCapabilities caps;
    caps.needs_initial_scores = true;
    caps.supports_refine = true;
    return caps;
  }
  Result<PartitionerOutput> Build(PartitionerContext& context) override {
    FAIRIDX_ASSIGN_OR_RETURN(const GridAggregates* aggregates,
                             context.ScoredAggregates());
    FairQuadtreeOptions quad_options;
    quad_options.target_regions = context.target_regions();
    quad_options.num_threads = context.options().num_threads;
    PartitionerOutput out;
    if (context.options().enable_refine) {
      FAIRIDX_ASSIGN_OR_RETURN(
          QuadTreeMaintainer maintainer,
          QuadTreeMaintainer::Build(context.dataset().grid(), *aggregates,
                                    quad_options));
      out.partition = maintainer.partition();
      maintainer_.emplace(std::move(maintainer));
    } else {
      FAIRIDX_ASSIGN_OR_RETURN(
          out.partition, BuildFairQuadtree(context.dataset().grid(),
                                           *aggregates, quad_options));
    }
    out.model_fits = context.initial_fits();
    return out;
  }

  // The serving layer's entry point: same recorded maintainer growth as
  // the enable_refine path, minus the dataset/model context. Mirrors the
  // KD adapters' height -> target map (2^height regions).
  Result<const PartitionResult*> BuildFromAggregates(
      const Grid& grid, const GridAggregates& aggregates,
      const PartitionerBuildOptions& options) override {
    if (options.height < 0) {
      // A negative shift count is UB; the KD path rejects this in its
      // tree build, so match that contract here.
      return InvalidArgumentError(
          "fair_quadtree: height must be >= 0");
    }
    FairQuadtreeOptions quad_options;
    quad_options.target_regions = 1 << std::min(options.height, 30);
    quad_options.num_threads = options.num_threads;
    FAIRIDX_ASSIGN_OR_RETURN(
        QuadTreeMaintainer maintainer,
        QuadTreeMaintainer::Build(grid, aggregates, quad_options));
    maintainer_.emplace(std::move(maintainer));
    return &maintainer_->partition();
  }

  Result<KdRefineStats> Refine(const GridAggregates& aggregates,
                               const KdRefineOptions& options) override {
    if (!maintainer_.has_value()) {
      return Partitioner::Refine(aggregates, options);
    }
    return maintainer_->Refine(aggregates, options);
  }

  const PartitionResult* maintained() const override {
    return maintainer_.has_value() ? &maintainer_->partition() : nullptr;
  }

  Result<std::string> SaveMaintained() const override {
    if (!maintainer_.has_value()) {
      return Partitioner::SaveMaintained();
    }
    return maintainer_->Save();
  }

  Status RestoreMaintained(const Grid& grid,
                           const PartitionerBuildOptions& options,
                           const std::string& blob) override {
    if (options.height < 0) {
      return InvalidArgumentError("fair_quadtree: height must be >= 0");
    }
    FairQuadtreeOptions quad_options;
    quad_options.target_regions = 1 << std::min(options.height, 30);
    quad_options.num_threads = options.num_threads;
    FAIRIDX_ASSIGN_OR_RETURN(
        QuadTreeMaintainer maintainer,
        QuadTreeMaintainer::Restore(grid, quad_options, blob));
    maintainer_.emplace(std::move(maintainer));
    return Status::Ok();
  }

 private:
  std::optional<QuadTreeMaintainer> maintainer_;
};

class StrSlabsPartitioner : public Partitioner {
 public:
  const char* name() const override { return "str_slabs"; }
  PartitionerCapabilities capabilities() const override {
    return PartitionerCapabilities{};
  }
  Result<PartitionerOutput> Build(PartitionerContext& context) override {
    FAIRIDX_ASSIGN_OR_RETURN(const GridAggregates* aggregates,
                             context.CountAggregates());
    PartitionerOutput out;
    FAIRIDX_ASSIGN_OR_RETURN(
        out.partition,
        BuildStrPartition(context.dataset().grid(), *aggregates,
                          context.target_regions()));
    return out;
  }
};

}  // namespace

void RegisterIndexPartitioners(PartitionerRegistry& registry) {
  registry.Register("median_kd_tree", [] {
    return std::make_unique<MedianKdTreePartitioner>();
  });
  registry.Register("fair_kd_tree", [] {
    return std::make_unique<FairKdTreePartitioner>();
  });
  registry.Register("grid_reweighting", [] {
    return std::make_unique<UniformGridPartitioner>();
  });
  registry.Register("zip_codes", [] {
    return std::make_unique<ZipCodesPartitioner>();
  });
  registry.Register("fair_quadtree", [] {
    return std::make_unique<FairQuadtreePartitioner>();
  });
  registry.Register("str_slabs", [] {
    return std::make_unique<StrSlabsPartitioner>();
  });
}

}  // namespace fairidx
