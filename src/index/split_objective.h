// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Split objectives for fairness-aware KD splitting. The paper's objective
// (Eq. 9) balances the *weighted miscalibration* of the two children:
//
//   z_k = | |L|*|o(L)-e(L)| - |R|*|o(R)-e(R)| |
//
// The multi-objective variant (Eq. 13) balances residual mass instead.
// Alternative objectives (minimax, weighted-sum, compactness composites) are
// provided for the ablation study that the paper's future-work section
// motivates ("custom split metrics for fairness-aware spatial indexing").

#ifndef FAIRIDX_INDEX_SPLIT_OBJECTIVE_H_
#define FAIRIDX_INDEX_SPLIT_OBJECTIVE_H_

#include <string>

#include "geo/grid_aggregates.h"
#include "geo/rect.h"

namespace fairidx {

/// Available split objectives (all minimised).
enum class SplitObjectiveKind {
  /// Paper Eq. 9: | |L|*mis(L) - |R|*mis(R) |.
  kPaperEq9,
  /// max(|L|*mis(L), |R|*mis(R)): directly cap the worse child.
  kMinimaxChild,
  /// |L|*mis(L) + |R|*mis(R): minimise total weighted child miscalibration.
  kWeightedSum,
  /// Paper Eq. 13 (multi-objective): | |L|*|resid(L)| - |R|*|resid(R)| |.
  kResidualBalanceEq13,
  /// Eq. 9-consistent residual form: | |resid(L)| - |resid(R)| | (for m = 1
  /// this equals Eq. 9 exactly; see DESIGN.md on the printed discrepancy).
  kResidualBalanceEq9,
  /// Standard KD-tree median split: | count(L) - count(R) |.
  kMedianCount,
};

/// Stable display name ("eq9", "minimax", ...).
const char* SplitObjectiveKindName(SplitObjectiveKind kind);

/// Objective configuration.
struct SplitObjectiveOptions {
  SplitObjectiveKind kind = SplitObjectiveKind::kPaperEq9;
  /// If > 0, adds `compactness_weight * total_count * penalty` where the
  /// penalty is the children's mean aspect ratio minus 1 — the composite
  /// geo+fairness metric sketched in the paper's introduction. 0 disables.
  double compactness_weight = 0.0;
};

/// Evaluates the objective for one candidate split of a node into
/// (left_rect, right_rect) with aggregates (left, right). Lower is better.
/// Only the fields named by RequiredAggregateFields(options) are read, so
/// callers may pass aggregates with the other fields unfilled.
double EvaluateSplit(const SplitObjectiveOptions& options,
                     const CellRect& left_rect, const RegionAggregate& left,
                     const CellRect& right_rect, const RegionAggregate& right);

/// The AggregateField mask of statistics EvaluateSplit reads under
/// `options`. The split scan passes this to GridAggregates::SplitSweep so
/// objectives like kMedianCount never touch the label/score/residual
/// prefixes at all.
unsigned RequiredAggregateFields(const SplitObjectiveOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_INDEX_SPLIT_OBJECTIVE_H_
