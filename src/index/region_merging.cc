#include "index/region_merging.h"

#include <algorithm>
#include <map>

namespace fairidx {
namespace {

// Boundary lengths between region pairs (number of adjacent cell edges).
std::map<std::pair<int, int>, int> ComputeAdjacency(
    const Grid& grid, const std::vector<int>& cell_to_region) {
  std::map<std::pair<int, int>, int> boundary;
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      const int region = cell_to_region[grid.CellId(r, c)];
      if (c + 1 < grid.cols()) {
        const int right = cell_to_region[grid.CellId(r, c + 1)];
        if (right != region) {
          boundary[{std::min(region, right), std::max(region, right)}] += 1;
        }
      }
      if (r + 1 < grid.rows()) {
        const int below = cell_to_region[grid.CellId(r + 1, c)];
        if (below != region) {
          boundary[{std::min(region, below), std::max(region, below)}] += 1;
        }
      }
    }
  }
  return boundary;
}

}  // namespace

Result<RegionMergingResult> MergeSmallRegions(
    const Grid& grid, const Partition& partition,
    const std::vector<int>& record_cells,
    const RegionMergingOptions& options) {
  if (partition.num_cells() != grid.num_cells()) {
    return InvalidArgumentError(
        "MergeSmallRegions: partition does not cover the grid");
  }
  for (int cell : record_cells) {
    if (cell < 0 || cell >= grid.num_cells()) {
      return OutOfRangeError("MergeSmallRegions: record cell out of range");
    }
  }
  if (options.min_population < 0.0) {
    return InvalidArgumentError(
        "MergeSmallRegions: min_population must be >= 0");
  }

  std::vector<int> cell_to_region = partition.cell_to_region();
  std::vector<double> population(
      static_cast<size_t>(partition.num_regions()), 0.0);
  for (int cell : record_cells) {
    population[static_cast<size_t>(cell_to_region[cell])] += 1.0;
  }

  RegionMergingResult out;
  if (options.min_population <= 0.0) {
    out.partition = partition;
    return out;
  }

  // Greedy loop; adjacency is recomputed per merge. Partition sizes here
  // are hundreds of regions over a ~64x64 grid, so the O(merges * cells)
  // cost is negligible next to model training.
  while (true) {
    // Pick the smallest under-populated region (id tie-break).
    int victim = -1;
    for (size_t region = 0; region < population.size(); ++region) {
      if (population[region] >= options.min_population) continue;
      if (victim == -1 || population[region] < population[victim] ||
          (population[region] == population[victim] &&
           static_cast<int>(region) < victim)) {
        victim = static_cast<int>(region);
      }
    }
    if (victim == -1) break;

    const auto boundary = ComputeAdjacency(grid, cell_to_region);
    // Best neighbor: longest shared boundary, then smallest population,
    // then smallest id.
    int best_neighbor = -1;
    int best_boundary = -1;
    for (const auto& [pair, length] : boundary) {
      int other = -1;
      if (pair.first == victim) other = pair.second;
      if (pair.second == victim) other = pair.first;
      if (other < 0) continue;
      const bool better =
          length > best_boundary ||
          (length == best_boundary &&
           (best_neighbor == -1 ||
            population[other] < population[best_neighbor] ||
            (population[other] == population[best_neighbor] &&
             other < best_neighbor)));
      if (better) {
        best_boundary = length;
        best_neighbor = other;
      }
    }
    if (best_neighbor < 0) break;  // No neighbor (single region left).

    for (int& region : cell_to_region) {
      if (region == victim) region = best_neighbor;
    }
    population[static_cast<size_t>(best_neighbor)] +=
        population[static_cast<size_t>(victim)];
    // Mark the victim as satisfied/emptied so it is never picked again.
    population[static_cast<size_t>(victim)] = options.min_population;
    ++out.merges;
    if (out.merges > partition.num_regions()) {
      return InternalError("MergeSmallRegions: merge loop did not converge");
    }
  }

  FAIRIDX_ASSIGN_OR_RETURN(out.partition,
                           Partition::FromCellMap(std::move(cell_to_region)));
  return out;
}

}  // namespace fairidx
