// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Incremental maintenance for greedy fair-quadtree partitions — the
// quadtree counterpart of index/kd_tree_maintainer.h, so the serving layer
// covers every tree structure. The maintainer keeps the recorded
// refinement tree plus a per-node aggregate snapshot from the last
// (re)build, and on Refine re-runs the greedy priority-queue frontier ONLY
// inside the subtrees whose region calibration gap |o(N) - e(N)| drifted
// past a bound, with each drifted subtree's region budget fixed to the
// leaf count it already holds. When every re-split subtree keeps its leaf
// count (the common case for localized drift), the leaf list and the
// partition's cell map are patched in place, so a refine costs O(drifted
// area + tree), not a full O(UV) regrow.
//
// Exactness: snapshots and refine-time fresh values use the identical
// batched-leaf QueryMany + bottom-up child-order-sum scheme, so Refine on
// aggregates identical to the build input computes a drift of exactly 0 at
// every node and returns without touching the tree — the maintained
// partition stays bit-identical to a from-scratch BuildFairQuadtree.
// Re-split subtrees go through GrowFairQuadtree on the fresh aggregates:
// the same greedy decisions a from-scratch growth of that rect would take.

#ifndef FAIRIDX_INDEX_QUADTREE_MAINTAINER_H_
#define FAIRIDX_INDEX_QUADTREE_MAINTAINER_H_

#include <array>
#include <vector>

#include "common/result.h"
#include "geo/grid.h"
#include "geo/grid_aggregates.h"
#include "index/kd_tree_maintainer.h"
#include "index/partition.h"
#include "index/quadtree.h"

namespace fairidx {

/// A fair-quadtree partition plus the recorded refinement tree and
/// per-node snapshots, supporting drift-bounded incremental re-splits.
/// Shares KdRefineOptions/KdRefineStats with the KD maintainer so both
/// plug into the same Partitioner::Refine seam. Copyable: a copy
/// maintains its own tree independently (benchmarks refine copies).
class QuadTreeMaintainer {
 public:
  /// Grows the tree on `aggregates` (identical leaves to BuildFairQuadtree
  /// with the same options) and snapshots every node's aggregate for later
  /// drift checks.
  static Result<QuadTreeMaintainer> Build(const Grid& grid,
                                          const GridAggregates& aggregates,
                                          const FairQuadtreeOptions& options);

  /// The current partition (regions in finished order). Valid after Build
  /// and updated by every Refine.
  const PartitionResult& partition() const { return partition_; }

  int num_leaves() const {
    return static_cast<int>(partition_.regions.size());
  }

  /// Evaluates drift at every node against `aggregates`: each TOPMOST
  /// drifted node's subtree is regrown from scratch on the fresh
  /// aggregates via the greedy frontier, targeting the subtree's current
  /// leaf count (snapshot refreshed); clean nodes keep their structure and
  /// their reference snapshot, so drift accumulates against the last
  /// rebuild, not the last check.
  Result<KdRefineStats> Refine(const GridAggregates& aggregates,
                               const KdRefineOptions& options);

  /// Serializes the full maintenance state — refinement tree, per-node
  /// reference snapshots, leaf finished-order, partition — to an opaque
  /// blob; Restore(grid, options, Save()) is bit-identical (the
  /// durability layer's checkpoint path). The leaf finished-order is
  /// priority-queue dependent and NOT derivable from the node array, so
  /// it is serialized explicitly.
  std::string Save() const;

  /// Rebuilds a maintainer from Save() output. `grid` and `options` must
  /// match the saved maintainer's; the blob is validated structurally.
  static Result<QuadTreeMaintainer> Restore(
      const Grid& grid, const FairQuadtreeOptions& options,
      const std::string& blob);

 private:
  /// Maintainer-side node: explicit child ids (a quadtree node has up to 4
  /// children) so drifted subtrees splice without re-indexing siblings.
  /// Children always carry larger ids than their parent, so a reverse id
  /// walk aggregates children before parents.
  struct Node {
    CellRect rect;
    int num_children = 0;
    std::array<int, 4> children = {{-1, -1, -1, -1}};
    RegionAggregate snapshot;

    bool is_leaf() const { return num_children == 0; }
  };

  /// One drifted subtree scheduled for regrowth: its root (old id), the
  /// leaf-list positions its current leaves occupy (ascending), and the
  /// replacement recording.
  struct Patch {
    int root = 0;
    std::vector<int> positions;
    QuadtreeRecording recording;
  };

  QuadTreeMaintainer(const Grid& grid, FairQuadtreeOptions options)
      : grid_(grid), options_(options) {}

  /// Converts `recording` into maintainer nodes appended to `nodes`, with
  /// snapshots taken against `aggregates` (batched leaf query + bottom-up
  /// child-order sums). Returns the new ids of the recording's leaves, in
  /// the recording's finished order.
  static std::vector<int> AppendRecording(const QuadtreeRecording& recording,
                                          const GridAggregates& aggregates,
                                          std::vector<Node>* nodes);

  Grid grid_;
  FairQuadtreeOptions options_;
  /// Refinement tree with per-node reference snapshots (node 0 = root).
  std::vector<Node> nodes_;
  /// Node ids of the leaves, in finished order — parallel to
  /// partition_.regions (region id == leaf position).
  std::vector<int> leaf_nodes_;
  PartitionResult partition_;
};

}  // namespace fairidx

#endif  // FAIRIDX_INDEX_QUADTREE_MAINTAINER_H_
