// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Greedy fairness-first quadtree: an alternative complete-coverage index
// structure (the paper's future-work direction). Instead of fixed-depth
// binary splits, it repeatedly quarters the region with the largest weighted
// miscalibration until a target region count is reached — a best-first
// refinement that spends resolution where unfairness concentrates.

#ifndef FAIRIDX_INDEX_QUADTREE_H_
#define FAIRIDX_INDEX_QUADTREE_H_

#include "common/result.h"
#include "geo/grid.h"
#include "geo/grid_aggregates.h"
#include "index/partition.h"

namespace fairidx {

/// Options for the greedy fair quadtree.
struct FairQuadtreeOptions {
  /// Stop refining once at least this many regions exist.
  int target_regions = 64;
  /// Regions with fewer records than this are not refined further.
  double min_region_count = 1.0;
};

/// Builds the greedy quadtree partition. Priority = the region's weighted
/// miscalibration |sum_labels - sum_scores|; quartering is by cell midpoints
/// (degenerate axes produce 2-way splits). Deterministic.
Result<PartitionResult> BuildFairQuadtree(const Grid& grid,
                                          const GridAggregates& aggregates,
                                          const FairQuadtreeOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_INDEX_QUADTREE_H_
