// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Greedy fairness-first quadtree: an alternative complete-coverage index
// structure (the paper's future-work direction). Instead of fixed-depth
// binary splits, it repeatedly quarters the region with the largest weighted
// miscalibration until a target region count is reached — a best-first
// refinement that spends resolution where unfairness concentrates.
//
// The growth loop is exposed in two forms: BuildFairQuadtree (the one-shot
// partition build) and GrowFairQuadtree (the recorded core: same greedy
// decisions, plus the refinement tree and the leaf/node correspondence).
// The recording is what incremental maintenance
// (index/quadtree_maintainer.h) keeps between epochs so drifted subtrees
// can re-run the frontier locally instead of regrowing the whole tree.

#ifndef FAIRIDX_INDEX_QUADTREE_H_
#define FAIRIDX_INDEX_QUADTREE_H_

#include <vector>

#include "common/result.h"
#include "geo/grid.h"
#include "geo/grid_aggregates.h"
#include "index/partition.h"

namespace fairidx {

/// Options for the greedy fair quadtree.
struct FairQuadtreeOptions {
  /// Stop refining once at least this many regions exist.
  int target_regions = 64;
  /// Regions with fewer records than this are not refined further.
  double min_region_count = 1.0;
  /// Parallelism for the cell-map fill when a build (or maintainer
  /// restore) materializes the Partition from the finished leaves — see
  /// Partition::FromRects. The greedy growth itself is sequential and the
  /// partition is bit-identical at any value. <= 1 is serial.
  int num_threads = 1;
};

/// One node of a recorded quadtree growth, stored in creation (frontier
/// push) order: node 0 is the root, and a split node's children occupy the
/// contiguous index range [first_child, first_child + num_children).
/// Children are always created after their parent, so a reverse index walk
/// visits children before parents (what bottom-up aggregation relies on).
struct QuadTreeNode {
  CellRect rect;
  int first_child = -1;
  int num_children = 0;

  bool is_leaf() const { return num_children == 0; }
};

/// A recorded greedy growth: the refinement tree plus the finished leaves.
/// `leaves` (and the parallel `leaf_nodes` ids) are in the SAME finished
/// order BuildFairQuadtree emits for identical inputs, so the recorded and
/// unrecorded builds produce bit-identical partitions.
struct QuadtreeRecording {
  std::vector<QuadTreeNode> nodes;
  /// Node ids of the leaves, parallel to `leaves`.
  std::vector<int> leaf_nodes;
  std::vector<CellRect> leaves;
  /// Frontier pops that actually split (the quadtree's analogue of a
  /// split scan).
  long long num_splits = 0;
};

/// The greedy frontier growth from an arbitrary root rect: repeatedly
/// quarters the frontier region with the largest weighted miscalibration
/// |sum_labels - sum_scores| (by cell midpoints; degenerate axes produce
/// 2-way splits) until at least `options.target_regions` regions exist.
/// Deterministic: ties break toward the earlier-created region. This is
/// both the core of BuildFairQuadtree (root = the full grid) and the
/// re-split engine the maintainer runs on a drifted subtree rect.
Result<QuadtreeRecording> GrowFairQuadtree(const GridAggregates& aggregates,
                                           const CellRect& root,
                                           const FairQuadtreeOptions& options);

/// Builds the greedy quadtree partition over the full grid (see
/// GrowFairQuadtree for the refinement rules). Deterministic.
Result<PartitionResult> BuildFairQuadtree(const Grid& grid,
                                          const GridAggregates& aggregates,
                                          const FairQuadtreeOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_INDEX_QUADTREE_H_
