// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Gaussian naive Bayes, the third classifier in the paper's evaluation.

#ifndef FAIRIDX_ML_NAIVE_BAYES_H_
#define FAIRIDX_ML_NAIVE_BAYES_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairidx {

/// Hyper-parameters for GaussianNaiveBayes.
struct NaiveBayesOptions {
  /// Variance floor as a fraction of the largest feature variance
  /// (sklearn's var_smoothing).
  double var_smoothing = 1e-9;
};

/// Gaussian naive Bayes: class-conditional feature independence with
/// per-class Gaussian likelihoods.
class GaussianNaiveBayes : public Classifier {
 public:
  GaussianNaiveBayes() = default;
  explicit GaussianNaiveBayes(const NaiveBayesOptions& options)
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y,
             const std::vector<double>* sample_weights) override;
  using Classifier::Fit;

  Result<std::vector<double>> PredictScores(const Matrix& X) const override;

  /// Importance = standardized class-mean separation per feature
  /// (|mu1 - mu0| / pooled sigma), normalized.
  std::vector<double> FeatureImportances() const override;

  std::string name() const override { return "naive_bayes"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<GaussianNaiveBayes>(options_);
  }
  bool is_fitted() const override { return fitted_; }

 private:
  NaiveBayesOptions options_;
  bool fitted_ = false;
  double log_prior_positive_ = 0.0;
  double log_prior_negative_ = 0.0;
  // Per-class per-feature Gaussian parameters.
  std::vector<double> mean_[2];
  std::vector<double> variance_[2];
};

}  // namespace fairidx

#endif  // FAIRIDX_ML_NAIVE_BAYES_H_
