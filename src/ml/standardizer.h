// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Per-feature z-score standardization, fitted on training data and applied
// to both train and test matrices. Logistic regression uses this internally
// so that gradient descent is well conditioned regardless of feature scales
// (income in thousands next to percentages).

#ifndef FAIRIDX_ML_STANDARDIZER_H_
#define FAIRIDX_ML_STANDARDIZER_H_

#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace fairidx {

/// Fits column means/stds and maps x -> (x - mean) / std. Constant columns
/// get std 1 so they map to zero rather than dividing by zero.
class Standardizer {
 public:
  /// Fits on `X`, optionally weighted. Refitting discards the previous fit.
  Status Fit(const Matrix& X,
             const std::vector<double>* sample_weights = nullptr);

  /// Transforms `X`; column count must match the fitted matrix.
  Result<Matrix> Transform(const Matrix& X) const;

  bool is_fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace fairidx

#endif  // FAIRIDX_ML_STANDARDIZER_H_
