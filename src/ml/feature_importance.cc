#include "ml/feature_importance.h"

#include <cstdio>
#include <cstdlib>

namespace fairidx {

void ImportanceHeatmap::AddRow(int height,
                               const std::vector<double>& importances) {
  if (importances.size() != feature_names.size()) {
    std::fprintf(stderr,
                 "ImportanceHeatmap::AddRow: %zu importances for %zu "
                 "features\n",
                 importances.size(), feature_names.size());
    std::abort();
  }
  heights.push_back(height);
  if (values.empty()) {
    values = Matrix(0, feature_names.size());
  }
  values.AppendRow(importances);
}

TablePrinter ImportanceHeatmap::ToTable(int precision) const {
  std::vector<std::string> header = {"height"};
  header.insert(header.end(), feature_names.begin(), feature_names.end());
  TablePrinter table(std::move(header));
  for (size_t i = 0; i < heights.size(); ++i) {
    std::vector<std::string> row = {std::to_string(heights[i])};
    for (size_t j = 0; j < feature_names.size(); ++j) {
      row.push_back(TablePrinter::FormatDouble(values(i, j), precision));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

std::vector<double> NormalizeImportances(std::vector<double> raw) {
  double total = 0.0;
  for (double v : raw) total += v;
  if (total > 0.0) {
    for (double& v : raw) v /= total;
  }
  return raw;
}

}  // namespace fairidx
