// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// In-processing mitigation comparator: logistic regression with a
// group-calibration penalty, in the spirit of the prejudice-remover
// regularizer cited by the paper's related work (Section 3). The loss adds
//
//   lambda * sum_g (|g|/n) * ((1/|g|) * sum_{i in g} (p_i - y_i))^2
//
// penalising each neighborhood's mean residual — a differentiable proxy
// for ENCE. Group ids are read from a designated column of the design
// matrix (by default the last column, i.e. the pipeline's neighborhood
// feature), which keeps the generic Classifier interface intact.

#ifndef FAIRIDX_ML_FAIR_LOGISTIC_REGRESSION_H_
#define FAIRIDX_ML_FAIR_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/standardizer.h"

namespace fairidx {

/// Hyper-parameters for FairLogisticRegression.
struct FairLogisticRegressionOptions {
  /// Strength of the group-calibration penalty (0 = plain LR).
  double fairness_weight = 1.0;
  /// Design-matrix column holding integer group ids; -1 means the last
  /// column. The column also remains an ordinary feature.
  int group_column = -1;
  double learning_rate = 0.5;
  int max_iterations = 500;
  double gradient_tolerance = 1e-6;
  double l2 = 1e-3;
};

/// Logistic regression whose training loss penalises per-neighborhood mean
/// residuals.
class FairLogisticRegression : public Classifier {
 public:
  FairLogisticRegression() = default;
  explicit FairLogisticRegression(
      const FairLogisticRegressionOptions& options)
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y,
             const std::vector<double>* sample_weights) override;
  using Classifier::Fit;

  Result<std::vector<double>> PredictScores(const Matrix& X) const override;

  std::vector<double> FeatureImportances() const override;

  std::string name() const override { return "fair_logistic_regression"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<FairLogisticRegression>(options_);
  }
  bool is_fitted() const override { return fitted_; }

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  FairLogisticRegressionOptions options_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fairidx

#endif  // FAIRIDX_ML_FAIR_LOGISTIC_REGRESSION_H_
