#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace fairidx {
namespace {

// Gini impurity of a (weight, positive-weight) mass.
double Gini(double total, double positive) {
  if (total <= 0.0) return 0.0;
  const double p = positive / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const Matrix& X, const std::vector<int>& y,
                         const std::vector<double>* sample_weights) {
  FAIRIDX_RETURN_IF_ERROR(ValidateTrainingInputs(X, y, sample_weights));
  nodes_.clear();
  num_features_ = X.cols();
  importances_.assign(num_features_, 0.0);

  std::vector<double> weights(X.rows(), 1.0);
  if (sample_weights != nullptr) weights = *sample_weights;

  std::vector<size_t> indices(X.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  BuildNode(X, y, weights, indices, 0, indices.size(), 0);
  return Status::Ok();
}

int DecisionTree::BuildNode(const Matrix& X, const std::vector<int>& y,
                            const std::vector<double>& weights,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, int depth) {
  double total_weight = 0.0;
  double positive_weight = 0.0;
  for (size_t i = begin; i < end; ++i) {
    total_weight += weights[indices[i]];
    positive_weight += weights[indices[i]] * y[indices[i]];
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].score =
      total_weight > 0 ? positive_weight / total_weight : 0.0;

  const double node_gini = Gini(total_weight, positive_weight);
  const bool splittable = depth < options_.max_depth &&
                          total_weight >= options_.min_weight_split &&
                          node_gini > 0.0;
  if (!splittable) return node_id;

  // Best split over all features; ties keep the first (lowest feature,
  // lowest threshold), which makes the tree deterministic. A candidate
  // with zero improvement is still eligible (sklearn semantics), subject
  // to min_impurity_decrease below.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_decrease = -1.0;
  std::vector<std::pair<double, size_t>> order(end - begin);

  for (size_t f = 0; f < num_features_; ++f) {
    for (size_t i = begin; i < end; ++i) {
      order[i - begin] = {X(indices[i], f), indices[i]};
    }
    std::sort(order.begin(), order.end());

    double left_weight = 0.0;
    double left_positive = 0.0;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      const size_t row = order[i].second;
      left_weight += weights[row];
      left_positive += weights[row] * y[row];
      // Candidate thresholds lie between distinct consecutive values.
      if (order[i].first == order[i + 1].first) continue;
      const double right_weight = total_weight - left_weight;
      const double right_positive = positive_weight - left_positive;
      if (left_weight < options_.min_weight_leaf ||
          right_weight < options_.min_weight_leaf) {
        continue;
      }
      const double child_gini =
          (left_weight * Gini(left_weight, left_positive) +
           right_weight * Gini(right_weight, right_positive)) /
          total_weight;
      const double decrease = node_gini - child_gini;
      if (decrease > best_decrease) {
        best_decrease = decrease;
        best_feature = static_cast<int>(f);
        best_threshold = (order[i].first + order[i + 1].first) / 2.0;
      }
    }
  }
  if (best_feature < 0 || best_decrease < options_.min_impurity_decrease) {
    return node_id;
  }

  // Partition [begin, end) by the chosen split; stable to keep determinism.
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (size_t i = begin; i < end; ++i) {
    if (X(indices[i], static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(indices[i]);
    } else {
      right_rows.push_back(indices[i]);
    }
  }
  std::copy(left_rows.begin(), left_rows.end(), indices.begin() + begin);
  std::copy(right_rows.begin(), right_rows.end(),
            indices.begin() + begin + left_rows.size());

  importances_[static_cast<size_t>(best_feature)] +=
      total_weight * best_decrease;

  const size_t mid = begin + left_rows.size();
  const int left_id = BuildNode(X, y, weights, indices, begin, mid, depth + 1);
  const int right_id = BuildNode(X, y, weights, indices, mid, end, depth + 1);
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].left = left_id;
  nodes_[node_id].right = right_id;
  return node_id;
}

Result<std::vector<double>> DecisionTree::PredictScores(
    const Matrix& X) const {
  if (nodes_.empty()) {
    return FailedPreconditionError("DecisionTree: predict before fit");
  }
  if (X.cols() != num_features_) {
    return InvalidArgumentError("DecisionTree: feature count mismatch");
  }
  std::vector<double> scores(X.rows());
  for (size_t r = 0; r < X.rows(); ++r) {
    int node = 0;
    while (nodes_[node].feature >= 0) {
      const double v = X(r, static_cast<size_t>(nodes_[node].feature));
      node = v <= nodes_[node].threshold ? nodes_[node].left
                                         : nodes_[node].right;
    }
    scores[r] = nodes_[node].score;
  }
  return scores;
}

std::vector<double> DecisionTree::FeatureImportances() const {
  std::vector<double> out = importances_;
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
  return out;
}

}  // namespace fairidx
