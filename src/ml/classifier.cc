#include "ml/classifier.h"

namespace fairidx {

std::vector<int> ScoresToLabels(const std::vector<double>& scores,
                                double threshold) {
  std::vector<int> labels(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = scores[i] >= threshold ? 1 : 0;
  }
  return labels;
}

Status ValidateTrainingInputs(const Matrix& X, const std::vector<int>& y,
                              const std::vector<double>* sample_weights) {
  if (X.rows() == 0 || X.cols() == 0) {
    return InvalidArgumentError("Fit: empty design matrix");
  }
  if (y.size() != X.rows()) {
    return InvalidArgumentError("Fit: labels size != rows");
  }
  for (int label : y) {
    if (label != 0 && label != 1) {
      return InvalidArgumentError("Fit: labels must be 0 or 1");
    }
  }
  if (sample_weights != nullptr) {
    if (sample_weights->size() != X.rows()) {
      return InvalidArgumentError("Fit: sample_weights size != rows");
    }
    double total = 0.0;
    for (double w : *sample_weights) {
      if (w < 0.0) return InvalidArgumentError("Fit: negative sample weight");
      total += w;
    }
    if (total <= 0.0) {
      return InvalidArgumentError("Fit: sample weights sum to zero");
    }
  }
  return Status::Ok();
}

}  // namespace fairidx
