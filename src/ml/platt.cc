#include "ml/platt.h"

#include <algorithm>
#include <cmath>

#include "ml/logistic_regression.h"

namespace fairidx {
namespace {

// Clamped logit keeping extreme scores finite.
double Logit(double p) {
  const double clamped = std::clamp(p, 1e-9, 1.0 - 1e-9);
  return std::log(clamped / (1.0 - clamped));
}

}  // namespace

Status PlattScaler::Fit(const std::vector<double>& scores,
                        const std::vector<int>& labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    return InvalidArgumentError("PlattScaler::Fit: bad input sizes");
  }
  int positives = 0;
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return InvalidArgumentError("PlattScaler::Fit: labels must be 0/1");
    }
    positives += y;
  }
  if (positives == 0 || positives == static_cast<int>(labels.size())) {
    return InvalidArgumentError(
        "PlattScaler::Fit: both classes must be present");
  }
  fitted_ = false;

  const size_t n = scores.size();
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) z[i] = Logit(scores[i]);

  // 1-D logistic regression p' = sigmoid(a z + b) via gradient descent
  // with backtracking, starting at the identity map (a=1, b=0).
  double a = 1.0;
  double b = 0.0;
  auto loss_at = [&](double aa, double bb) {
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double margin = aa * z[i] + bb;
      const double m = labels[i] == 1 ? margin : -margin;
      loss += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
    }
    return loss / static_cast<double>(n);
  };
  double prev_loss = loss_at(a, b);
  double step = options_.learning_rate;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    double grad_a = 0.0;
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double err = Sigmoid(a * z[i] + b) - labels[i];
      grad_a += err * z[i];
      grad_b += err;
    }
    grad_a /= static_cast<double>(n);
    grad_b /= static_cast<double>(n);
    if (std::max(std::abs(grad_a), std::abs(grad_b)) <
        options_.tolerance) {
      break;
    }
    const double old_a = a;
    const double old_b = b;
    while (true) {
      a = old_a - step * grad_a;
      b = old_b - step * grad_b;
      const double loss = loss_at(a, b);
      if (loss <= prev_loss + 1e-12 || step < 1e-9) {
        prev_loss = loss;
        step = std::min(step * 1.1, options_.learning_rate * 4.0);
        break;
      }
      step *= 0.5;
    }
  }
  slope_ = a;
  intercept_ = b;
  fitted_ = true;
  return Status::Ok();
}

double PlattScaler::Transform(double score) const {
  return Sigmoid(slope_ * Logit(score) + intercept_);
}

std::vector<double> PlattScaler::TransformAll(
    const std::vector<double>& scores) const {
  std::vector<double> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) out[i] = Transform(scores[i]);
  return out;
}

}  // namespace fairidx
