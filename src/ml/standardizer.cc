#include "ml/standardizer.h"

#include <cmath>

namespace fairidx {

Status Standardizer::Fit(const Matrix& X,
                         const std::vector<double>* sample_weights) {
  if (X.rows() == 0 || X.cols() == 0) {
    return InvalidArgumentError("Standardizer::Fit: empty matrix");
  }
  if (sample_weights != nullptr && sample_weights->size() != X.rows()) {
    return InvalidArgumentError("Standardizer::Fit: weight size mismatch");
  }
  const size_t d = X.cols();
  means_.assign(d, 0.0);
  stds_.assign(d, 0.0);

  double total_weight = 0.0;
  for (size_t r = 0; r < X.rows(); ++r) {
    const double w = sample_weights ? (*sample_weights)[r] : 1.0;
    total_weight += w;
    const double* row = X.Row(r);
    for (size_t c = 0; c < d; ++c) means_[c] += w * row[c];
  }
  if (total_weight <= 0.0) {
    return InvalidArgumentError("Standardizer::Fit: zero total weight");
  }
  for (size_t c = 0; c < d; ++c) means_[c] /= total_weight;

  for (size_t r = 0; r < X.rows(); ++r) {
    const double w = sample_weights ? (*sample_weights)[r] : 1.0;
    const double* row = X.Row(r);
    for (size_t c = 0; c < d; ++c) {
      const double delta = row[c] - means_[c];
      stds_[c] += w * delta * delta;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    stds_[c] = std::sqrt(stds_[c] / total_weight);
    if (stds_[c] < 1e-12) stds_[c] = 1.0;  // Constant column.
  }
  return Status::Ok();
}

Result<Matrix> Standardizer::Transform(const Matrix& X) const {
  if (!is_fitted()) {
    return FailedPreconditionError("Standardizer::Transform before Fit");
  }
  if (X.cols() != means_.size()) {
    return InvalidArgumentError("Standardizer::Transform: column mismatch");
  }
  Matrix out(X.rows(), X.cols());
  for (size_t r = 0; r < X.rows(); ++r) {
    const double* src = X.Row(r);
    double* dst = out.MutableRow(r);
    for (size_t c = 0; c < X.cols(); ++c) {
      dst[c] = (src[c] - means_[c]) / stds_[c];
    }
  }
  return out;
}

}  // namespace fairidx
