// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// L2-regularised logistic regression trained with full-batch gradient
// descent on standardized features. The paper's primary classifier.

#ifndef FAIRIDX_ML_LOGISTIC_REGRESSION_H_
#define FAIRIDX_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/standardizer.h"

namespace fairidx {

/// Hyper-parameters for LogisticRegression.
struct LogisticRegressionOptions {
  /// Initial step size; the optimiser halves it on loss increase.
  double learning_rate = 0.5;
  int max_iterations = 500;
  /// Stop when the max absolute gradient component falls below this.
  double gradient_tolerance = 1e-6;
  /// L2 penalty on non-intercept weights (per-sample scale).
  double l2 = 1e-3;
};

/// Binary logistic regression: p(y=1|x) = sigmoid(w . z + b) with z the
/// standardized feature vector.
class LogisticRegression : public Classifier {
 public:
  LogisticRegression() = default;
  explicit LogisticRegression(const LogisticRegressionOptions& options)
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y,
             const std::vector<double>* sample_weights) override;
  using Classifier::Fit;

  Result<std::vector<double>> PredictScores(const Matrix& X) const override;

  /// Importance = |w_j| on the standardized scale, normalized to sum 1.
  std::vector<double> FeatureImportances() const override;

  std::string name() const override { return "logistic_regression"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LogisticRegression>(options_);
  }
  bool is_fitted() const override { return fitted_; }

  /// Fitted weights on the standardized scale (size = feature count).
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  /// Number of gradient-descent iterations the last Fit performed.
  int last_fit_iterations() const { return last_fit_iterations_; }

 private:
  LogisticRegressionOptions options_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
  int last_fit_iterations_ = 0;
};

/// Numerically stable sigmoid.
double Sigmoid(double z);

}  // namespace fairidx

#endif  // FAIRIDX_ML_LOGISTIC_REGRESSION_H_
