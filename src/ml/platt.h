// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Platt scaling [Platt 1999], the post-processing calibration method cited
// by the paper's related-work taxonomy: refit scores through a 1-D logistic
// map p' = sigmoid(a * logit(p) + b).

#ifndef FAIRIDX_ML_PLATT_H_
#define FAIRIDX_ML_PLATT_H_

#include <vector>

#include "common/result.h"

namespace fairidx {

/// Options for PlattScaler fitting.
struct PlattOptions {
  int max_iterations = 200;
  double learning_rate = 1.0;
  double tolerance = 1e-8;
};

/// One-dimensional logistic recalibration of confidence scores.
class PlattScaler {
 public:
  PlattScaler() = default;
  explicit PlattScaler(const PlattOptions& options) : options_(options) {}

  /// Fits (a, b) on (scores, labels) by logistic regression on the score
  /// logit. Requires both classes present.
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels);

  /// Recalibrates one score; requires a prior successful Fit.
  double Transform(double score) const;

  /// Recalibrates a batch.
  std::vector<double> TransformAll(const std::vector<double>& scores) const;

  bool is_fitted() const { return fitted_; }
  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

 private:
  PlattOptions options_;
  double slope_ = 1.0;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fairidx

#endif  // FAIRIDX_ML_PLATT_H_
