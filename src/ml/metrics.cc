#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

namespace fairidx {
namespace {

Status ValidateScoresLabels(const std::vector<double>& scores,
                            const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return InvalidArgumentError("metrics: scores/labels size mismatch");
  }
  if (scores.empty()) return InvalidArgumentError("metrics: empty input");
  return Status::Ok();
}

}  // namespace

Result<double> Accuracy(const std::vector<double>& scores,
                        const std::vector<int>& labels, double threshold) {
  FAIRIDX_RETURN_IF_ERROR(ValidateScoresLabels(scores, labels));
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int predicted = scores[i] >= threshold ? 1 : 0;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

Result<double> LogLoss(const std::vector<double>& scores,
                       const std::vector<int>& labels, double eps) {
  FAIRIDX_RETURN_IF_ERROR(ValidateScoresLabels(scores, labels));
  double loss = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const double p = std::clamp(scores[i], eps, 1.0 - eps);
    loss += labels[i] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return loss / static_cast<double>(scores.size());
}

Result<double> RocAuc(const std::vector<double>& scores,
                      const std::vector<int>& labels) {
  FAIRIDX_RETURN_IF_ERROR(ValidateScoresLabels(scores, labels));
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  double positive_rank_sum = 0.0;
  long long num_positive = 0;
  long long num_negative = 0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    // Ranks are 1-based; tied entries share the average rank of the run.
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) {
        positive_rank_sum += midrank;
        ++num_positive;
      } else {
        ++num_negative;
      }
    }
    i = j;
  }
  if (num_positive == 0 || num_negative == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(num_positive) *
                       (static_cast<double>(num_positive) + 1.0) / 2.0;
  return u / (static_cast<double>(num_positive) *
              static_cast<double>(num_negative));
}

Result<ConfusionCounts> Confusion(const std::vector<double>& scores,
                                  const std::vector<int>& labels,
                                  double threshold) {
  FAIRIDX_RETURN_IF_ERROR(ValidateScoresLabels(scores, labels));
  ConfusionCounts counts;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int predicted = scores[i] >= threshold ? 1 : 0;
    if (predicted == 1 && labels[i] == 1) ++counts.true_positives;
    if (predicted == 0 && labels[i] == 0) ++counts.true_negatives;
    if (predicted == 1 && labels[i] == 0) ++counts.false_positives;
    if (predicted == 0 && labels[i] == 1) ++counts.false_negatives;
  }
  return counts;
}

}  // namespace fairidx
