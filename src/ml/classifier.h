// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// The binary-classifier interface used by the fair indexing pipeline. The
// paper treats models as black boxes that emit confidence scores in [0, 1];
// three concrete models are provided (logistic regression, decision tree,
// Gaussian naive Bayes), matching the paper's evaluation. All models accept
// per-sample weights so the reweighting baseline can be expressed.

#ifndef FAIRIDX_ML_CLASSIFIER_H_
#define FAIRIDX_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace fairidx {

/// Abstract binary classifier. Implementations must be deterministic: the
/// same inputs always produce the same model.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on design matrix `X` (rows = samples) with labels `y` in {0,1}.
  /// `sample_weights`, if non-null, must be non-negative with positive sum
  /// and one entry per row. Refitting an already-fitted model is allowed and
  /// discards the previous fit.
  virtual Status Fit(const Matrix& X, const std::vector<int>& y,
                     const std::vector<double>* sample_weights) = 0;

  Status Fit(const Matrix& X, const std::vector<int>& y) {
    return Fit(X, y, nullptr);
  }

  /// Confidence scores in [0, 1], one per row of `X`. Requires a prior
  /// successful Fit with the same column count.
  virtual Result<std::vector<double>> PredictScores(const Matrix& X) const = 0;

  /// Per-feature importance, normalized to sum to 1 (all zeros if the model
  /// found no signal). Requires a prior successful Fit.
  virtual std::vector<double> FeatureImportances() const = 0;

  /// Short stable model name ("logistic_regression", ...).
  virtual std::string name() const = 0;

  /// A fresh, unfitted classifier with the same hyper-parameters.
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  virtual bool is_fitted() const = 0;
};

/// Thresholds scores into 0/1 predictions.
std::vector<int> ScoresToLabels(const std::vector<double>& scores,
                                double threshold = 0.5);

/// Validates (X, y, weights) shape/value invariants shared by all models.
Status ValidateTrainingInputs(const Matrix& X, const std::vector<int>& y,
                              const std::vector<double>* sample_weights);

}  // namespace fairidx

#endif  // FAIRIDX_ML_CLASSIFIER_H_
