// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Feature-importance heatmaps over tree heights (the paper's Figure 9): for
// each index height, the normalized importance of every feature (including
// the neighborhood attribute) in the retrained classifier.

#ifndef FAIRIDX_ML_FEATURE_IMPORTANCE_H_
#define FAIRIDX_ML_FEATURE_IMPORTANCE_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/table_printer.h"

namespace fairidx {

/// A heights x features grid of normalized importances.
struct ImportanceHeatmap {
  std::vector<std::string> feature_names;
  std::vector<int> heights;
  /// values(i, j) = importance of feature j at heights[i]; rows sum to 1
  /// (or 0 when the model found no signal).
  Matrix values;

  /// Adds one row; `importances` must match feature_names in size.
  void AddRow(int height, const std::vector<double>& importances);

  /// Renders as an aligned table, one row per height.
  TablePrinter ToTable(int precision = 3) const;
};

/// Normalizes non-negative raw importances to sum to 1 (no-op on all-zeros).
std::vector<double> NormalizeImportances(std::vector<double> raw);

}  // namespace fairidx

#endif  // FAIRIDX_ML_FEATURE_IMPORTANCE_H_
