// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// CART-style binary decision tree with Gini impurity. One of the paper's
// three evaluated classifiers. Leaf scores are weighted positive fractions,
// so the tree emits usable confidence scores, not just labels.

#ifndef FAIRIDX_ML_DECISION_TREE_H_
#define FAIRIDX_ML_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairidx {

/// Hyper-parameters for DecisionTree.
struct DecisionTreeOptions {
  int max_depth = 6;
  /// A split is only considered if both children carry at least this weight.
  double min_weight_leaf = 5.0;
  /// Nodes below this weight become leaves.
  double min_weight_split = 10.0;
  /// Minimum Gini improvement to accept a split. The default 0 matches
  /// sklearn: zero-improvement splits are allowed (needed to escape
  /// XOR-like plateaus), and growth stops at depth/weight limits.
  double min_impurity_decrease = 0.0;
};

/// Binary CART classifier.
class DecisionTree : public Classifier {
 public:
  DecisionTree() = default;
  explicit DecisionTree(const DecisionTreeOptions& options)
      : options_(options) {}

  Status Fit(const Matrix& X, const std::vector<int>& y,
             const std::vector<double>* sample_weights) override;
  using Classifier::Fit;

  Result<std::vector<double>> PredictScores(const Matrix& X) const override;

  /// Importance = total weighted Gini decrease per feature, normalized.
  std::vector<double> FeatureImportances() const override;

  std::string name() const override { return "decision_tree"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DecisionTree>(options_);
  }
  bool is_fitted() const override { return !nodes_.empty(); }

  /// Number of nodes in the fitted tree (diagnostics).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Internal nodes route x[feature] <= threshold to `left`, else `right`;
    // leaves have feature == -1 and carry `score`.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double score = 0.0;
  };

  int BuildNode(const Matrix& X, const std::vector<int>& y,
                const std::vector<double>& weights,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  size_t num_features_ = 0;
};

}  // namespace fairidx

#endif  // FAIRIDX_ML_DECISION_TREE_H_
