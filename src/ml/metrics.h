// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Standard classification metrics (accuracy, log-loss, AUC, confusion).
// Fairness-specific metrics (calibration, ECE, ENCE) live in fairness/.

#ifndef FAIRIDX_ML_METRICS_H_
#define FAIRIDX_ML_METRICS_H_

#include <vector>

#include "common/result.h"

namespace fairidx {

/// Fraction of correct predictions when thresholding scores at `threshold`.
Result<double> Accuracy(const std::vector<double>& scores,
                        const std::vector<int>& labels,
                        double threshold = 0.5);

/// Average negative log-likelihood; scores are clipped to [eps, 1-eps].
Result<double> LogLoss(const std::vector<double>& scores,
                       const std::vector<int>& labels, double eps = 1e-12);

/// Area under the ROC curve (rank-based; ties get half credit). Returns 0.5
/// when one class is absent.
Result<double> RocAuc(const std::vector<double>& scores,
                      const std::vector<int>& labels);

/// 2x2 confusion counts at a threshold.
struct ConfusionCounts {
  long long true_positives = 0;
  long long true_negatives = 0;
  long long false_positives = 0;
  long long false_negatives = 0;
};
Result<ConfusionCounts> Confusion(const std::vector<double>& scores,
                                  const std::vector<int>& labels,
                                  double threshold = 0.5);

}  // namespace fairidx

#endif  // FAIRIDX_ML_METRICS_H_
