#include "ml/fair_logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ml/logistic_regression.h"

namespace fairidx {
namespace {

// Groups row indices by the integer value of the group column.
std::map<int, std::vector<size_t>> GroupRows(const Matrix& X,
                                             size_t group_column) {
  std::map<int, std::vector<size_t>> groups;
  for (size_t r = 0; r < X.rows(); ++r) {
    groups[static_cast<int>(std::llround(X(r, group_column)))].push_back(r);
  }
  return groups;
}

}  // namespace

Status FairLogisticRegression::Fit(const Matrix& X,
                                   const std::vector<int>& y,
                                   const std::vector<double>* sample_weights) {
  FAIRIDX_RETURN_IF_ERROR(ValidateTrainingInputs(X, y, sample_weights));
  if (sample_weights != nullptr) {
    return UnimplementedError(
        "FairLogisticRegression: sample weights are not supported (the "
        "fairness penalty already reweights groups)");
  }
  const size_t d = X.cols();
  const size_t group_column =
      options_.group_column < 0
          ? d - 1
          : static_cast<size_t>(options_.group_column);
  if (group_column >= d) {
    return InvalidArgumentError(
        "FairLogisticRegression: group_column out of range");
  }
  fitted_ = false;

  FAIRIDX_RETURN_IF_ERROR(standardizer_.Fit(X));
  auto transformed = standardizer_.Transform(X);
  if (!transformed.ok()) return transformed.status();
  const Matrix& Z = transformed.value();
  const size_t n = Z.rows();
  const double n_d = static_cast<double>(n);

  // Group membership comes from the raw (unstandardized) column.
  const std::map<int, std::vector<size_t>> groups =
      GroupRows(X, group_column);

  const double lambda = options_.fairness_weight;
  std::vector<double> p(n, 0.5);

  auto recompute_scores = [&]() {
    for (size_t r = 0; r < n; ++r) {
      p[r] = Sigmoid(Z.RowDot(r, weights_) + intercept_);
    }
  };
  auto loss_at = [&]() {
    double loss = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double clamped = std::clamp(p[r], 1e-12, 1.0 - 1e-12);
      loss += y[r] == 1 ? -std::log(clamped) : -std::log(1.0 - clamped);
    }
    loss /= n_d;
    double penalty = 0.0;
    for (const auto& [group, rows] : groups) {
      double residual = 0.0;
      for (size_t r : rows) residual += p[r] - y[r];
      const double mean_residual = residual / static_cast<double>(rows.size());
      penalty += (static_cast<double>(rows.size()) / n_d) * mean_residual *
                 mean_residual;
    }
    double l2_term = 0.0;
    for (double w : weights_) l2_term += w * w;
    return loss + lambda * penalty + 0.5 * options_.l2 * l2_term;
  };

  weights_.assign(d, 0.0);
  intercept_ = 0.0;
  recompute_scores();
  double prev_loss = loss_at();
  double step = options_.learning_rate;
  std::vector<double> grad(d, 0.0);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Data-fit gradient.
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double err = (p[r] - y[r]) / n_d;
      const double* row = Z.Row(r);
      for (size_t c = 0; c < d; ++c) grad[c] += err * row[c];
      grad_b += err;
    }
    // Fairness-penalty gradient: for group g with mean residual m_g,
    // d/dw = 2 * lambda * (|g|/n) * m_g * (1/|g|) * sum_g p(1-p) x.
    for (const auto& [group, rows] : groups) {
      double residual = 0.0;
      for (size_t r : rows) residual += p[r] - y[r];
      const double group_size = static_cast<double>(rows.size());
      const double mean_residual = residual / group_size;
      const double coefficient =
          2.0 * lambda * (group_size / n_d) * mean_residual / group_size;
      for (size_t r : rows) {
        const double sensitivity = p[r] * (1.0 - p[r]);
        const double* row = Z.Row(r);
        for (size_t c = 0; c < d; ++c) {
          grad[c] += coefficient * sensitivity * row[c];
        }
        grad_b += coefficient * sensitivity;
      }
    }
    double max_grad = std::abs(grad_b);
    for (size_t c = 0; c < d; ++c) {
      grad[c] += options_.l2 * weights_[c];
      max_grad = std::max(max_grad, std::abs(grad[c]));
    }
    if (max_grad < options_.gradient_tolerance) break;

    const std::vector<double> old_weights = weights_;
    const double old_intercept = intercept_;
    while (true) {
      for (size_t c = 0; c < d; ++c) {
        weights_[c] = old_weights[c] - step * grad[c];
      }
      intercept_ = old_intercept - step * grad_b;
      recompute_scores();
      const double loss = loss_at();
      if (loss <= prev_loss + 1e-12 || step < 1e-8) {
        prev_loss = loss;
        step = std::min(step * 1.05, options_.learning_rate * 4.0);
        break;
      }
      step *= 0.5;
    }
  }
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> FairLogisticRegression::PredictScores(
    const Matrix& X) const {
  if (!fitted_) {
    return FailedPreconditionError(
        "FairLogisticRegression: predict before fit");
  }
  auto transformed = standardizer_.Transform(X);
  if (!transformed.ok()) return transformed.status();
  const Matrix& Z = transformed.value();
  std::vector<double> scores(Z.rows());
  for (size_t r = 0; r < Z.rows(); ++r) {
    scores[r] = Sigmoid(Z.RowDot(r, weights_) + intercept_);
  }
  return scores;
}

std::vector<double> FairLogisticRegression::FeatureImportances() const {
  std::vector<double> importances(weights_.size(), 0.0);
  double total = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    importances[c] = std::abs(weights_[c]);
    total += importances[c];
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

}  // namespace fairidx
