#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

namespace fairidx {

Status GaussianNaiveBayes::Fit(const Matrix& X, const std::vector<int>& y,
                               const std::vector<double>* sample_weights) {
  FAIRIDX_RETURN_IF_ERROR(ValidateTrainingInputs(X, y, sample_weights));
  fitted_ = false;
  const size_t d = X.cols();

  double class_weight[2] = {0.0, 0.0};
  for (int k = 0; k < 2; ++k) {
    mean_[k].assign(d, 0.0);
    variance_[k].assign(d, 0.0);
  }
  for (size_t r = 0; r < X.rows(); ++r) {
    const double w = sample_weights ? (*sample_weights)[r] : 1.0;
    const int k = y[r];
    class_weight[k] += w;
    const double* row = X.Row(r);
    for (size_t c = 0; c < d; ++c) mean_[k][c] += w * row[c];
  }
  if (class_weight[0] <= 0.0 || class_weight[1] <= 0.0) {
    return InvalidArgumentError(
        "GaussianNaiveBayes: both classes need positive weight");
  }
  for (int k = 0; k < 2; ++k) {
    for (size_t c = 0; c < d; ++c) mean_[k][c] /= class_weight[k];
  }
  for (size_t r = 0; r < X.rows(); ++r) {
    const double w = sample_weights ? (*sample_weights)[r] : 1.0;
    const int k = y[r];
    const double* row = X.Row(r);
    for (size_t c = 0; c < d; ++c) {
      const double delta = row[c] - mean_[k][c];
      variance_[k][c] += w * delta * delta;
    }
  }
  double max_variance = 0.0;
  for (int k = 0; k < 2; ++k) {
    for (size_t c = 0; c < d; ++c) {
      variance_[k][c] /= class_weight[k];
      max_variance = std::max(max_variance, variance_[k][c]);
    }
  }
  const double floor = std::max(options_.var_smoothing * max_variance, 1e-12);
  for (int k = 0; k < 2; ++k) {
    for (size_t c = 0; c < d; ++c) {
      variance_[k][c] = std::max(variance_[k][c], floor);
    }
  }
  const double total = class_weight[0] + class_weight[1];
  log_prior_negative_ = std::log(class_weight[0] / total);
  log_prior_positive_ = std::log(class_weight[1] / total);
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> GaussianNaiveBayes::PredictScores(
    const Matrix& X) const {
  if (!fitted_) {
    return FailedPreconditionError("GaussianNaiveBayes: predict before fit");
  }
  if (X.cols() != mean_[0].size()) {
    return InvalidArgumentError("GaussianNaiveBayes: feature count mismatch");
  }
  std::vector<double> scores(X.rows());
  const size_t d = X.cols();
  for (size_t r = 0; r < X.rows(); ++r) {
    const double* row = X.Row(r);
    double log_joint[2] = {log_prior_negative_, log_prior_positive_};
    for (int k = 0; k < 2; ++k) {
      for (size_t c = 0; c < d; ++c) {
        const double delta = row[c] - mean_[k][c];
        log_joint[k] -= 0.5 * (std::log(2.0 * M_PI * variance_[k][c]) +
                               delta * delta / variance_[k][c]);
      }
    }
    // p(y=1|x) via a stable two-class softmax.
    const double m = std::max(log_joint[0], log_joint[1]);
    const double e0 = std::exp(log_joint[0] - m);
    const double e1 = std::exp(log_joint[1] - m);
    scores[r] = e1 / (e0 + e1);
  }
  return scores;
}

std::vector<double> GaussianNaiveBayes::FeatureImportances() const {
  std::vector<double> out(mean_[0].size(), 0.0);
  double total = 0.0;
  for (size_t c = 0; c < out.size(); ++c) {
    const double pooled =
        std::sqrt((variance_[0][c] + variance_[1][c]) / 2.0);
    out[c] = pooled > 0 ? std::abs(mean_[1][c] - mean_[0][c]) / pooled : 0.0;
    total += out[c];
  }
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
  return out;
}

}  // namespace fairidx
