#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace fairidx {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

namespace {

// Weighted negative log-likelihood + L2, averaged over total weight.
double ComputeLoss(const Matrix& Z, const std::vector<int>& y,
                   const std::vector<double>& weights_per_sample,
                   double total_weight, const std::vector<double>& w,
                   double b, double l2) {
  double loss = 0.0;
  for (size_t r = 0; r < Z.rows(); ++r) {
    const double margin = Z.RowDot(r, w) + b;
    // log(1 + exp(-m)) for y=1 and log(1 + exp(m)) for y=0, stably.
    const double z = y[r] == 1 ? margin : -margin;
    const double nll = z > 0 ? std::log1p(std::exp(-z)) : -z +
                                   std::log1p(std::exp(z));
    loss += weights_per_sample[r] * nll;
  }
  loss /= total_weight;
  double penalty = 0.0;
  for (double wj : w) penalty += wj * wj;
  return loss + 0.5 * l2 * penalty;
}

}  // namespace

Status LogisticRegression::Fit(const Matrix& X, const std::vector<int>& y,
                               const std::vector<double>* sample_weights) {
  FAIRIDX_RETURN_IF_ERROR(ValidateTrainingInputs(X, y, sample_weights));
  fitted_ = false;

  FAIRIDX_RETURN_IF_ERROR(standardizer_.Fit(X, sample_weights));
  auto transformed = standardizer_.Transform(X);
  if (!transformed.ok()) return transformed.status();
  const Matrix& Z = transformed.value();

  const size_t n = Z.rows();
  const size_t d = Z.cols();
  std::vector<double> weights_per_sample(n, 1.0);
  if (sample_weights != nullptr) weights_per_sample = *sample_weights;
  double total_weight = 0.0;
  for (double w : weights_per_sample) total_weight += w;

  weights_.assign(d, 0.0);
  intercept_ = 0.0;
  double step = options_.learning_rate;
  double prev_loss = ComputeLoss(Z, y, weights_per_sample, total_weight,
                                 weights_, intercept_, options_.l2);

  std::vector<double> grad(d, 0.0);
  last_fit_iterations_ = 0;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double p = Sigmoid(Z.RowDot(r, weights_) + intercept_);
      const double err = weights_per_sample[r] * (p - y[r]);
      const double* row = Z.Row(r);
      for (size_t c = 0; c < d; ++c) grad[c] += err * row[c];
      grad_b += err;
    }
    double max_grad = std::abs(grad_b / total_weight);
    for (size_t c = 0; c < d; ++c) {
      grad[c] = grad[c] / total_weight + options_.l2 * weights_[c];
      max_grad = std::max(max_grad, std::abs(grad[c]));
    }
    grad_b /= total_weight;
    ++last_fit_iterations_;
    if (max_grad < options_.gradient_tolerance) break;

    // Backtracking step: retry with halved step while the loss increases.
    const std::vector<double> old_weights = weights_;
    const double old_intercept = intercept_;
    while (true) {
      for (size_t c = 0; c < d; ++c) {
        weights_[c] = old_weights[c] - step * grad[c];
      }
      intercept_ = old_intercept - step * grad_b;
      const double loss = ComputeLoss(Z, y, weights_per_sample, total_weight,
                                      weights_, intercept_, options_.l2);
      if (loss <= prev_loss + 1e-12 || step < 1e-8) {
        prev_loss = loss;
        // Gentle step growth recovers speed after a backtrack.
        step = std::min(step * 1.05, options_.learning_rate * 4.0);
        break;
      }
      step *= 0.5;
    }
  }
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> LogisticRegression::PredictScores(
    const Matrix& X) const {
  if (!fitted_) {
    return FailedPreconditionError("LogisticRegression: predict before fit");
  }
  auto transformed = standardizer_.Transform(X);
  if (!transformed.ok()) return transformed.status();
  const Matrix& Z = transformed.value();
  std::vector<double> scores(Z.rows());
  for (size_t r = 0; r < Z.rows(); ++r) {
    scores[r] = Sigmoid(Z.RowDot(r, weights_) + intercept_);
  }
  return scores;
}

std::vector<double> LogisticRegression::FeatureImportances() const {
  std::vector<double> importances(weights_.size(), 0.0);
  double total = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    importances[c] = std::abs(weights_[c]);
    total += importances[c];
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

}  // namespace fairidx
