#include "service/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/binary_io.h"
#include "index/partition_io.h"

namespace fairidx {
namespace {

constexpr uint32_t kCheckpointMagic = 0x4658434Bu;  // "FXCK"
constexpr uint32_t kCheckpointVersion = 1;

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

// Best-effort directory fsync so the rename itself survives power loss.
// Failure is ignored: some filesystems reject directory fsync, and the
// checkpoint contents are already synced.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

std::string SerializeBody(const CheckpointData& data) {
  BinaryWriter out;
  out.PutI32(data.rows);
  out.PutI32(data.cols);
  out.PutI64(data.epoch);
  out.PutI64(data.sealed_records);
  out.PutI64(data.wal_generation);
  out.PutI64(data.total_resplits);
  out.PutString(data.algorithm);
  out.PutU64(data.cell_sums.size());
  for (const GridAggregates::PrefixEntry& entry : data.cell_sums) {
    out.PutDouble(entry.count);
    out.PutDouble(entry.labels);
    out.PutDouble(entry.scores);
    out.PutDouble(entry.residuals);
    out.PutDouble(entry.cell_abs);
  }
  out.PutString(SerializePartitionBinary(data.partition));
  out.PutU64(data.regions.size());
  for (const CellRect& rect : data.regions) {
    out.PutI32(rect.row_begin);
    out.PutI32(rect.row_end);
    out.PutI32(rect.col_begin);
    out.PutI32(rect.col_end);
  }
  out.PutString(data.maintained_blob);
  return out.Release();
}

Result<CheckpointData> ParseBody(const std::string& body,
                                 const std::string& path) {
  BinaryReader in(body);
  CheckpointData data;
  FAIRIDX_ASSIGN_OR_RETURN(data.rows, in.ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(data.cols, in.ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(data.epoch, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.sealed_records, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.wal_generation, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.total_resplits, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.algorithm, in.ReadString());
  if (data.rows < 1 || data.cols < 1 || data.epoch < 0 ||
      data.sealed_records < 0 || data.wal_generation < 1) {
    return DataLossError("checkpoint " + path + ": invalid header fields");
  }
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_cells, in.ReadU64());
  if (num_cells != static_cast<uint64_t>(data.rows) *
                       static_cast<uint64_t>(data.cols)) {
    return DataLossError("checkpoint " + path +
                         ": cell-sum count disagrees with grid shape");
  }
  data.cell_sums.reserve(static_cast<size_t>(num_cells));
  for (uint64_t i = 0; i < num_cells; ++i) {
    GridAggregates::PrefixEntry entry;
    FAIRIDX_ASSIGN_OR_RETURN(entry.count, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.labels, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.scores, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.residuals, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.cell_abs, in.ReadDouble());
    data.cell_sums.push_back(entry);
  }
  // The partition cell map, region ids verbatim (same wire format as
  // SerializePartitionBinary, parsed here against rows*cols instead of a
  // full Grid object).
  FAIRIDX_ASSIGN_OR_RETURN(const std::string partition_bytes,
                           in.ReadString());
  BinaryReader partition_in(partition_bytes);
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t map_cells, partition_in.ReadU64());
  if (map_cells != num_cells) {
    return DataLossError("checkpoint " + path +
                         ": partition cell count disagrees with grid");
  }
  FAIRIDX_ASSIGN_OR_RETURN(const int32_t num_regions, partition_in.ReadI32());
  std::vector<int> cell_to_region;
  cell_to_region.reserve(static_cast<size_t>(map_cells));
  for (uint64_t i = 0; i < map_cells; ++i) {
    FAIRIDX_ASSIGN_OR_RETURN(const int32_t region, partition_in.ReadI32());
    cell_to_region.push_back(region);
  }
  Result<Partition> partition =
      Partition::FromCellMapExact(std::move(cell_to_region), num_regions);
  if (!partition.ok()) {
    return DataLossError("checkpoint " + path + ": " +
                         partition.status().message());
  }
  data.partition = std::move(*partition);
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_rects, in.ReadU64());
  data.regions.reserve(static_cast<size_t>(num_rects));
  for (uint64_t i = 0; i < num_rects; ++i) {
    CellRect rect;
    FAIRIDX_ASSIGN_OR_RETURN(rect.row_begin, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.row_end, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.col_begin, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.col_end, in.ReadI32());
    data.regions.push_back(rect);
  }
  FAIRIDX_ASSIGN_OR_RETURN(data.maintained_blob, in.ReadString());
  if (in.remaining() != 0) {
    return DataLossError("checkpoint " + path + ": trailing bytes");
  }
  return data;
}

}  // namespace

std::string CheckpointFileName(long long epoch, long long generation) {
  return "checkpoint-" + std::to_string(epoch) + "-" +
         std::to_string(generation) + ".ckpt";
}

Result<std::vector<CheckpointInfo>> ListCheckpoints(const std::string& dir) {
  std::error_code ec;
  std::vector<CheckpointInfo> checkpoints;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return NotFoundError("cannot list checkpoint dir '" + dir +
                         "': " + ec.message());
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    long long epoch = 0;
    long long generation = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%lld-%lld.ckpt%n", &epoch,
                    &generation, &consumed) == 2 &&
        consumed == static_cast<int>(name.size())) {
      checkpoints.push_back(
          CheckpointInfo{epoch, generation, entry.path().string()});
    }
  }
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch
                                        : a.generation < b.generation;
            });
  return checkpoints;
}

Status WriteCheckpoint(const std::string& dir, const CheckpointData& data,
                       const WritableFileFactory& file_factory) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create checkpoint dir '" + dir +
                         "': " + ec.message());
  }
  const std::string body = SerializeBody(data);
  BinaryWriter framed;
  framed.PutU32(kCheckpointMagic);
  framed.PutU32(kCheckpointVersion);
  framed.PutU32(static_cast<uint32_t>(body.size()));
  framed.PutU32(Crc32(body.data(), body.size()));
  framed.PutBytes(body.data(), body.size());

  const std::string final_path =
      JoinPath(dir, CheckpointFileName(data.epoch, data.wal_generation));
  const std::string tmp_path = final_path + ".tmp";
  {
    Result<std::unique_ptr<WritableFile>> file =
        file_factory ? file_factory(tmp_path) : OpenWritableFile(tmp_path);
    FAIRIDX_RETURN_IF_ERROR(file.status());
    FAIRIDX_RETURN_IF_ERROR(
        (*file)->Append(framed.buffer().data(), framed.buffer().size()));
    FAIRIDX_RETURN_IF_ERROR((*file)->Sync());
    FAIRIDX_RETURN_IF_ERROR((*file)->Close());
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return InternalError("cannot install checkpoint '" + final_path +
                         "': " + ec.message());
  }
  SyncDir(dir);
  return Status::Ok();
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError("cannot open checkpoint '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();
  BinaryReader frame(bytes);
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t magic, frame.ReadU32());
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t version, frame.ReadU32());
  if (magic != kCheckpointMagic || version != kCheckpointVersion) {
    return DataLossError("checkpoint " + path + ": bad magic or version");
  }
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t body_len, frame.ReadU32());
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t expected_crc, frame.ReadU32());
  if (frame.remaining() != body_len) {
    return DataLossError("checkpoint " + path + ": truncated body (" +
                         std::to_string(frame.remaining()) + " of " +
                         std::to_string(body_len) + " bytes)");
  }
  const std::string body = bytes.substr(bytes.size() - body_len);
  if (Crc32(body.data(), body.size()) != expected_crc) {
    return DataLossError("checkpoint " + path + ": CRC mismatch");
  }
  return ParseBody(body, path);
}

Result<CheckpointData> LoadLatestCheckpoint(const std::string& dir) {
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> checkpoints,
                           ListCheckpoints(dir));
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    Result<CheckpointData> data = ReadCheckpoint(it->path);
    if (data.ok()) return data;
  }
  return NotFoundError("no valid checkpoint under '" + dir + "'");
}

Status PruneCheckpoints(const std::string& dir, int keep_last) {
  if (keep_last < 1) {
    return InvalidArgumentError("PruneCheckpoints: keep_last must be >= 1");
  }
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> checkpoints,
                           ListCheckpoints(dir));
  if (checkpoints.size() <= static_cast<size_t>(keep_last)) {
    return Status::Ok();
  }
  std::error_code ec;
  for (size_t i = 0; i + static_cast<size_t>(keep_last) < checkpoints.size();
       ++i) {
    std::filesystem::remove(checkpoints[i].path, ec);
  }
  return Status::Ok();
}

Status PruneWalSegments(const std::string& dir, long long through_epoch) {
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                           ListWalSegments(dir));
  std::error_code ec;
  for (const WalSegmentInfo& segment : segments) {
    if (segment.epoch <= through_epoch) {
      std::filesystem::remove(segment.path, ec);
    }
  }
  return Status::Ok();
}

}  // namespace fairidx
