#include "service/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/binary_io.h"
#include "index/partition_io.h"

namespace fairidx {
namespace {

constexpr uint32_t kCheckpointMagic = 0x4658434Bu;  // "FXCK"
constexpr uint32_t kCheckpointVersion = 1;
constexpr uint32_t kDeltaCheckpointMagic = 0x46584443u;  // "FXDC"
constexpr uint32_t kDeltaCheckpointVersion = 1;

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

// Best-effort directory fsync so the rename itself survives power loss.
// Failure is ignored: some filesystems reject directory fsync, and the
// checkpoint contents are already synced.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

std::string SerializeBody(const CheckpointData& data) {
  BinaryWriter out;
  out.PutI32(data.rows);
  out.PutI32(data.cols);
  out.PutI64(data.epoch);
  out.PutI64(data.sealed_records);
  out.PutI64(data.wal_generation);
  out.PutI64(data.total_resplits);
  out.PutString(data.algorithm);
  out.PutU64(data.cell_sums.size());
  for (const GridAggregates::PrefixEntry& entry : data.cell_sums) {
    out.PutDouble(entry.count);
    out.PutDouble(entry.labels);
    out.PutDouble(entry.scores);
    out.PutDouble(entry.residuals);
    out.PutDouble(entry.cell_abs);
  }
  out.PutString(SerializePartitionBinary(data.partition));
  out.PutU64(data.regions.size());
  for (const CellRect& rect : data.regions) {
    out.PutI32(rect.row_begin);
    out.PutI32(rect.row_end);
    out.PutI32(rect.col_begin);
    out.PutI32(rect.col_end);
  }
  out.PutString(data.maintained_blob);
  return out.Release();
}

Result<CheckpointData> ParseBody(const std::string& body,
                                 const std::string& path) {
  BinaryReader in(body);
  CheckpointData data;
  FAIRIDX_ASSIGN_OR_RETURN(data.rows, in.ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(data.cols, in.ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(data.epoch, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.sealed_records, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.wal_generation, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.total_resplits, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(data.algorithm, in.ReadString());
  if (data.rows < 1 || data.cols < 1 || data.epoch < 0 ||
      data.sealed_records < 0 || data.wal_generation < 1) {
    return DataLossError("checkpoint " + path + ": invalid header fields");
  }
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_cells, in.ReadU64());
  if (num_cells != static_cast<uint64_t>(data.rows) *
                       static_cast<uint64_t>(data.cols)) {
    return DataLossError("checkpoint " + path +
                         ": cell-sum count disagrees with grid shape");
  }
  data.cell_sums.reserve(static_cast<size_t>(num_cells));
  for (uint64_t i = 0; i < num_cells; ++i) {
    GridAggregates::PrefixEntry entry;
    FAIRIDX_ASSIGN_OR_RETURN(entry.count, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.labels, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.scores, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.residuals, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.cell_abs, in.ReadDouble());
    data.cell_sums.push_back(entry);
  }
  // The partition cell map, region ids verbatim (same wire format as
  // SerializePartitionBinary, parsed here against rows*cols instead of a
  // full Grid object).
  FAIRIDX_ASSIGN_OR_RETURN(const std::string partition_bytes,
                           in.ReadString());
  BinaryReader partition_in(partition_bytes);
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t map_cells, partition_in.ReadU64());
  if (map_cells != num_cells) {
    return DataLossError("checkpoint " + path +
                         ": partition cell count disagrees with grid");
  }
  FAIRIDX_ASSIGN_OR_RETURN(const int32_t num_regions, partition_in.ReadI32());
  std::vector<int> cell_to_region;
  cell_to_region.reserve(static_cast<size_t>(map_cells));
  for (uint64_t i = 0; i < map_cells; ++i) {
    FAIRIDX_ASSIGN_OR_RETURN(const int32_t region, partition_in.ReadI32());
    cell_to_region.push_back(region);
  }
  Result<Partition> partition =
      Partition::FromCellMapExact(std::move(cell_to_region), num_regions);
  if (!partition.ok()) {
    return DataLossError("checkpoint " + path + ": " +
                         partition.status().message());
  }
  data.partition = std::move(*partition);
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_rects, in.ReadU64());
  data.regions.reserve(static_cast<size_t>(num_rects));
  for (uint64_t i = 0; i < num_rects; ++i) {
    CellRect rect;
    FAIRIDX_ASSIGN_OR_RETURN(rect.row_begin, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.row_end, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.col_begin, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.col_end, in.ReadI32());
    data.regions.push_back(rect);
  }
  FAIRIDX_ASSIGN_OR_RETURN(data.maintained_blob, in.ReadString());
  if (in.remaining() != 0) {
    return DataLossError("checkpoint " + path + ": trailing bytes");
  }
  return data;
}

std::string SerializeDeltaBody(const CheckpointDelta& delta) {
  BinaryWriter out;
  out.PutI32(delta.rows);
  out.PutI32(delta.cols);
  out.PutI64(delta.epoch);
  out.PutI64(delta.sealed_records);
  out.PutI64(delta.wal_generation);
  out.PutI64(delta.total_resplits);
  out.PutString(delta.algorithm);
  out.PutI64(delta.prev_epoch);
  out.PutI64(delta.prev_generation);
  out.PutU64(delta.cells.size());
  for (size_t i = 0; i < delta.cells.size(); ++i) {
    out.PutU32(static_cast<uint32_t>(delta.cells[i]));
    out.PutDouble(delta.sums[i].count);
    out.PutDouble(delta.sums[i].labels);
    out.PutDouble(delta.sums[i].scores);
    out.PutDouble(delta.sums[i].residuals);
    out.PutDouble(delta.sums[i].cell_abs);
  }
  out.PutU64(delta.regions.size());
  for (const CellRect& rect : delta.regions) {
    out.PutI32(rect.row_begin);
    out.PutI32(rect.row_end);
    out.PutI32(rect.col_begin);
    out.PutI32(rect.col_end);
  }
  out.PutString(delta.maintained_blob);
  return out.Release();
}

Result<CheckpointDelta> ParseDeltaBody(const std::string& body,
                                       const std::string& path) {
  BinaryReader in(body);
  CheckpointDelta delta;
  FAIRIDX_ASSIGN_OR_RETURN(delta.rows, in.ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(delta.cols, in.ReadI32());
  FAIRIDX_ASSIGN_OR_RETURN(delta.epoch, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(delta.sealed_records, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(delta.wal_generation, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(delta.total_resplits, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(delta.algorithm, in.ReadString());
  FAIRIDX_ASSIGN_OR_RETURN(delta.prev_epoch, in.ReadI64());
  FAIRIDX_ASSIGN_OR_RETURN(delta.prev_generation, in.ReadI64());
  if (delta.rows < 1 || delta.cols < 1 || delta.epoch < 0 ||
      delta.sealed_records < 0 || delta.wal_generation < 1 ||
      delta.prev_epoch < 0 || delta.prev_generation < 1) {
    return DataLossError("checkpoint " + path + ": invalid header fields");
  }
  const uint64_t num_cells = static_cast<uint64_t>(delta.rows) *
                             static_cast<uint64_t>(delta.cols);
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_dirty, in.ReadU64());
  if (num_dirty > num_cells) {
    return DataLossError("checkpoint " + path +
                         ": more dirty cells than grid cells");
  }
  delta.cells.reserve(static_cast<size_t>(num_dirty));
  delta.sums.reserve(static_cast<size_t>(num_dirty));
  for (uint64_t i = 0; i < num_dirty; ++i) {
    FAIRIDX_ASSIGN_OR_RETURN(const uint32_t cell, in.ReadU32());
    if (cell >= num_cells ||
        (!delta.cells.empty() &&
         static_cast<uint32_t>(delta.cells.back()) >= cell)) {
      return DataLossError("checkpoint " + path +
                           ": dirty cells not ascending in-grid ids");
    }
    GridAggregates::PrefixEntry entry;
    FAIRIDX_ASSIGN_OR_RETURN(entry.count, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.labels, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.scores, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.residuals, in.ReadDouble());
    FAIRIDX_ASSIGN_OR_RETURN(entry.cell_abs, in.ReadDouble());
    delta.cells.push_back(static_cast<int>(cell));
    delta.sums.push_back(entry);
  }
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t num_rects, in.ReadU64());
  delta.regions.reserve(static_cast<size_t>(num_rects));
  for (uint64_t i = 0; i < num_rects; ++i) {
    CellRect rect;
    FAIRIDX_ASSIGN_OR_RETURN(rect.row_begin, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.row_end, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.col_begin, in.ReadI32());
    FAIRIDX_ASSIGN_OR_RETURN(rect.col_end, in.ReadI32());
    delta.regions.push_back(rect);
  }
  FAIRIDX_ASSIGN_OR_RETURN(delta.maintained_blob, in.ReadString());
  if (in.remaining() != 0) {
    return DataLossError("checkpoint " + path + ": trailing bytes");
  }
  return delta;
}

// Lists dir entries matching `pattern` (a two-%lld sscanf format), sorted
// ascending by (epoch, generation) — the shared scan behind
// ListCheckpoints / ListDeltaCheckpoints.
Result<std::vector<CheckpointInfo>> ListByPattern(const std::string& dir,
                                                  const char* pattern) {
  std::error_code ec;
  std::vector<CheckpointInfo> checkpoints;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return NotFoundError("cannot list checkpoint dir '" + dir +
                         "': " + ec.message());
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    long long epoch = 0;
    long long generation = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), pattern, &epoch, &generation,
                    &consumed) == 2 &&
        consumed == static_cast<int>(name.size())) {
      checkpoints.push_back(
          CheckpointInfo{epoch, generation, entry.path().string()});
    }
  }
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch
                                        : a.generation < b.generation;
            });
  return checkpoints;
}

// Atomically installs one CRC-framed body as dir/name (tmp + fsync +
// rename) — the shared tail of WriteCheckpoint / WriteDeltaCheckpoint.
Status WriteFramedFile(const std::string& dir, const std::string& name,
                       uint32_t magic, uint32_t version,
                       const std::string& body,
                       const WritableFileFactory& file_factory) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create checkpoint dir '" + dir +
                         "': " + ec.message());
  }
  BinaryWriter framed;
  framed.PutU32(magic);
  framed.PutU32(version);
  framed.PutU32(static_cast<uint32_t>(body.size()));
  framed.PutU32(Crc32(body.data(), body.size()));
  framed.PutBytes(body.data(), body.size());

  const std::string final_path = JoinPath(dir, name);
  const std::string tmp_path = final_path + ".tmp";
  {
    Result<std::unique_ptr<WritableFile>> file =
        file_factory ? file_factory(tmp_path) : OpenWritableFile(tmp_path);
    FAIRIDX_RETURN_IF_ERROR(file.status());
    FAIRIDX_RETURN_IF_ERROR(
        (*file)->Append(framed.buffer().data(), framed.buffer().size()));
    FAIRIDX_RETURN_IF_ERROR((*file)->Sync());
    FAIRIDX_RETURN_IF_ERROR((*file)->Close());
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return InternalError("cannot install checkpoint '" + final_path +
                         "': " + ec.message());
  }
  SyncDir(dir);
  return Status::Ok();
}

// Reads one CRC-framed file and returns its validated body — the shared
// head of ReadCheckpoint / ReadDeltaCheckpoint.
Result<std::string> ReadFramedFile(const std::string& path, uint32_t magic,
                                   uint32_t version) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError("cannot open checkpoint '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();
  BinaryReader frame(bytes);
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t got_magic, frame.ReadU32());
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t got_version, frame.ReadU32());
  if (got_magic != magic || got_version != version) {
    return DataLossError("checkpoint " + path + ": bad magic or version");
  }
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t body_len, frame.ReadU32());
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t expected_crc, frame.ReadU32());
  if (frame.remaining() != body_len) {
    return DataLossError("checkpoint " + path + ": truncated body (" +
                         std::to_string(frame.remaining()) + " of " +
                         std::to_string(body_len) + " bytes)");
  }
  const std::string body = bytes.substr(bytes.size() - body_len);
  if (Crc32(body.data(), body.size()) != expected_crc) {
    return DataLossError("checkpoint " + path + ": CRC mismatch");
  }
  return body;
}

// Materializes the partition a delta head's region rects imply (region i
// owns rect i — the tiling Partition::FromRects validates), reported as
// DataLoss so a bad head falls back like any other corrupt checkpoint.
Result<Partition> PartitionFromRegionRects(
    int rows, int cols, const std::vector<CellRect>& rects,
    const std::string& path) {
  std::vector<int> cell_to_region(
      static_cast<size_t>(rows) * static_cast<size_t>(cols), -1);
  for (size_t r = 0; r < rects.size(); ++r) {
    const CellRect& rect = rects[r];
    if (rect.row_begin < 0 || rect.col_begin < 0 || rect.row_end > rows ||
        rect.col_end > cols) {
      return DataLossError("checkpoint " + path +
                           ": region rect outside grid");
    }
    for (int row = rect.row_begin; row < rect.row_end; ++row) {
      std::fill(cell_to_region.begin() +
                    static_cast<size_t>(row) * cols + rect.col_begin,
                cell_to_region.begin() +
                    static_cast<size_t>(row) * cols + rect.col_end,
                static_cast<int>(r));
    }
  }
  Result<Partition> partition = Partition::FromCellMapExact(
      std::move(cell_to_region), static_cast<int>(rects.size()));
  if (!partition.ok()) {
    return DataLossError("checkpoint " + path + ": " +
                         partition.status().message());
  }
  return partition;
}

// Resolves a delta head into full CheckpointData: follows prev links back
// to a full checkpoint, then overlays the chain's dirty cells oldest
// first. Any missing/corrupt/cyclic link fails (with DataLoss), and
// LoadLatestCheckpoint falls back to the next-older head.
Result<CheckpointData> ResolveDeltaChain(
    const std::string& dir, const CheckpointInfo& head,
    const std::vector<CheckpointInfo>& deltas) {
  std::vector<CheckpointDelta> chain;  // head first, oldest last
  FAIRIDX_ASSIGN_OR_RETURN(CheckpointDelta head_delta,
                           ReadDeltaCheckpoint(head.path));
  chain.push_back(std::move(head_delta));
  CheckpointData base;
  for (;;) {
    const CheckpointDelta& tail = chain.back();
    // A full checkpoint at the link ends the chain.
    Result<CheckpointData> full = ReadCheckpoint(JoinPath(
        dir, CheckpointFileName(tail.prev_epoch, tail.prev_generation)));
    if (full.ok()) {
      base = std::move(*full);
      break;
    }
    const CheckpointInfo* prev_info = nullptr;
    for (const CheckpointInfo& info : deltas) {
      if (info.epoch == tail.prev_epoch &&
          info.generation == tail.prev_generation) {
        prev_info = &info;
        break;
      }
    }
    if (prev_info == nullptr) {
      return DataLossError("checkpoint " + head.path +
                           ": delta chain broken at predecessor (" +
                           std::to_string(tail.prev_epoch) + ", " +
                           std::to_string(tail.prev_generation) + ")");
    }
    if (chain.size() > deltas.size()) {
      return DataLossError("checkpoint " + head.path +
                           ": delta chain cycle");
    }
    FAIRIDX_ASSIGN_OR_RETURN(CheckpointDelta prev,
                             ReadDeltaCheckpoint(prev_info->path));
    chain.push_back(std::move(prev));
  }
  // Overlay oldest -> newest onto the base's cell sums.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const CheckpointDelta& delta = *it;
    if (delta.rows != base.rows || delta.cols != base.cols ||
        delta.algorithm != base.algorithm) {
      return DataLossError("checkpoint " + head.path +
                           ": delta chain disagrees with its base");
    }
    for (size_t i = 0; i < delta.cells.size(); ++i) {
      base.cell_sums[static_cast<size_t>(delta.cells[i])] = delta.sums[i];
    }
  }
  const CheckpointDelta& newest = chain.front();
  base.epoch = newest.epoch;
  base.sealed_records = newest.sealed_records;
  base.wal_generation = newest.wal_generation;
  base.total_resplits = newest.total_resplits;
  base.regions = newest.regions;
  base.maintained_blob = newest.maintained_blob;
  FAIRIDX_ASSIGN_OR_RETURN(
      base.partition,
      PartitionFromRegionRects(base.rows, base.cols, base.regions,
                               head.path));
  return base;
}

}  // namespace

std::string CheckpointFileName(long long epoch, long long generation) {
  return "checkpoint-" + std::to_string(epoch) + "-" +
         std::to_string(generation) + ".ckpt";
}

std::string DeltaCheckpointFileName(long long epoch, long long generation) {
  return "delta-" + std::to_string(epoch) + "-" +
         std::to_string(generation) + ".ckpt";
}

Result<std::vector<CheckpointInfo>> ListCheckpoints(const std::string& dir) {
  return ListByPattern(dir, "checkpoint-%lld-%lld.ckpt%n");
}

Result<std::vector<CheckpointInfo>> ListDeltaCheckpoints(
    const std::string& dir) {
  return ListByPattern(dir, "delta-%lld-%lld.ckpt%n");
}

Status WriteCheckpoint(const std::string& dir, const CheckpointData& data,
                       const WritableFileFactory& file_factory) {
  return WriteFramedFile(
      dir, CheckpointFileName(data.epoch, data.wal_generation),
      kCheckpointMagic, kCheckpointVersion, SerializeBody(data),
      file_factory);
}

Status WriteDeltaCheckpoint(const std::string& dir,
                            const CheckpointDelta& delta,
                            const WritableFileFactory& file_factory) {
  if (delta.sums.size() != delta.cells.size()) {
    return InvalidArgumentError(
        "WriteDeltaCheckpoint: cells/sums size mismatch");
  }
  return WriteFramedFile(
      dir, DeltaCheckpointFileName(delta.epoch, delta.wal_generation),
      kDeltaCheckpointMagic, kDeltaCheckpointVersion,
      SerializeDeltaBody(delta), file_factory);
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  FAIRIDX_ASSIGN_OR_RETURN(
      const std::string body,
      ReadFramedFile(path, kCheckpointMagic, kCheckpointVersion));
  return ParseBody(body, path);
}

Result<CheckpointDelta> ReadDeltaCheckpoint(const std::string& path) {
  FAIRIDX_ASSIGN_OR_RETURN(
      const std::string body,
      ReadFramedFile(path, kDeltaCheckpointMagic, kDeltaCheckpointVersion));
  return ParseDeltaBody(body, path);
}

Result<CheckpointData> LoadLatestCheckpoint(const std::string& dir) {
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> fulls,
                           ListCheckpoints(dir));
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> deltas,
                           ListDeltaCheckpoints(dir));
  // Heads: every file, newest (epoch, generation) first. A delta head
  // resolves through its chain; any failure falls back to the next head,
  // exactly like a corrupt full checkpoint.
  struct Head {
    CheckpointInfo info;
    bool is_delta = false;
  };
  std::vector<Head> heads;
  heads.reserve(fulls.size() + deltas.size());
  for (const CheckpointInfo& info : fulls) heads.push_back({info, false});
  for (const CheckpointInfo& info : deltas) heads.push_back({info, true});
  std::sort(heads.begin(), heads.end(), [](const Head& a, const Head& b) {
    return a.info.epoch != b.info.epoch
               ? a.info.epoch < b.info.epoch
               : a.info.generation < b.info.generation;
  });
  for (auto it = heads.rbegin(); it != heads.rend(); ++it) {
    Result<CheckpointData> data =
        it->is_delta ? ResolveDeltaChain(dir, it->info, deltas)
                     : ReadCheckpoint(it->info.path);
    if (data.ok()) return data;
  }
  return NotFoundError("no valid checkpoint under '" + dir + "'");
}

Status PruneCheckpoints(const std::string& dir, int keep_last) {
  if (keep_last < 1) {
    return InvalidArgumentError("PruneCheckpoints: keep_last must be >= 1");
  }
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> fulls,
                           ListCheckpoints(dir));
  std::error_code ec;
  if (fulls.size() > static_cast<size_t>(keep_last)) {
    for (size_t i = 0; i + static_cast<size_t>(keep_last) < fulls.size();
         ++i) {
      std::filesystem::remove(fulls[i].path, ec);
    }
  }
  if (fulls.empty()) return Status::Ok();
  // Deltas older than the oldest KEPT full can only chain to state that
  // was just pruned (the service never chains a delta across a newer
  // full), so they are unreachable; newer deltas may be the live head.
  const size_t first_kept =
      fulls.size() > static_cast<size_t>(keep_last)
          ? fulls.size() - static_cast<size_t>(keep_last)
          : 0;
  const CheckpointInfo& oldest_kept = fulls[first_kept];
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<CheckpointInfo> deltas,
                           ListDeltaCheckpoints(dir));
  for (const CheckpointInfo& delta : deltas) {
    const bool older = delta.epoch != oldest_kept.epoch
                           ? delta.epoch < oldest_kept.epoch
                           : delta.generation < oldest_kept.generation;
    if (older) std::filesystem::remove(delta.path, ec);
  }
  return Status::Ok();
}

Status PruneWalSegments(const std::string& dir, long long through_epoch) {
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                           ListWalSegments(dir));
  std::error_code ec;
  for (const WalSegmentInfo& segment : segments) {
    if (segment.epoch <= through_epoch) {
      std::filesystem::remove(segment.path, ec);
    }
  }
  return Status::Ok();
}

}  // namespace fairidx
