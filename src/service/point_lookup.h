// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// PointLookupIndex: the read front-end's immutable lookup snapshot — the
// query a million users actually issue is "which region am I in, and what
// are its fairness stats right now?", and this answers it in O(1) per
// point with no locks on the hot path.
//
// One snapshot pins FOUR things from the same publication instant:
//
//   * a flat row-major uint32_t cell -> region view (a zero-copy Span
//     into the published Partition's cell map — see
//     Partition::CellRegionIds; construction never re-runs the
//     FromRects cell-assignment loop);
//   * the Partition itself (shared ownership keeps the viewed storage
//     alive for as long as any reader holds the snapshot);
//   * the region rects readers may want to display;
//   * every region's RegionAggregate, computed against ONE sealed epoch
//     of the aggregate store, plus that epoch's number.
//
// Because the partition and the aggregates enter together at
// construction and the object is immutable afterwards, a reader holding
// a snapshot can never observe a torn partition/aggregate pair — the
// region id returned for a point and the aggregate returned for that id
// are from the same sealed epoch by construction. FairIndexService
// publishes fresh snapshots behind the same pointer-identity mechanism
// as the region list (grab the shared_ptr once, answer everything from
// it), so readers are wait-free with respect to seals and refines.

#ifndef FAIRIDX_SERVICE_POINT_LOOKUP_H_
#define FAIRIDX_SERVICE_POINT_LOOKUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "geo/grid.h"
#include "geo/grid_aggregates.h"
#include "geo/point.h"
#include "index/partition.h"

namespace fairidx {

/// One answered point lookup: the region id and that region's aggregate
/// from the snapshot's sealed epoch.
struct PointLookupResult {
  uint32_t region = 0;
  RegionAggregate aggregate;
};

/// Immutable point-to-region lookup snapshot (see file header). Built by
/// FairIndexService at every publication point; all methods are const and
/// safe to call from any number of threads concurrently.
class PointLookupIndex {
 public:
  /// Builds a snapshot over an already-built partition. `partition` must
  /// cover `grid` exactly; `regions` are its region rects (indexed by
  /// region id, may be empty for non-rectangular partitioners) and
  /// `aggregates` its per-region aggregates off sealed epoch `epoch`
  /// (one entry per region). The cell map is VIEWED, never copied — the
  /// snapshot shares ownership of `partition` to keep it alive.
  static Result<PointLookupIndex> Build(
      const Grid& grid, std::shared_ptr<const Partition> partition,
      std::shared_ptr<const std::vector<CellRect>> regions,
      std::vector<RegionAggregate> aggregates, long long epoch);

  /// Region id of the point's enclosing cell. O(1): one clamped
  /// coordinate-to-cell map plus one flat-array load. Points outside the
  /// grid extent clamp to the border cells, exactly like Grid::CellIdOf.
  uint32_t RegionOfPoint(const Point& p) const {
    return cell_to_region_[static_cast<size_t>(grid_.CellIdOf(p))];
  }

  /// Region id + that region's aggregate from this snapshot's epoch.
  PointLookupResult Lookup(const Point& p) const {
    const uint32_t region = RegionOfPoint(p);
    return PointLookupResult{region, aggregates_[region]};
  }

  /// Batched Lookup: fills out[i] with Lookup(points[i]), bit for bit.
  /// One call amortises the snapshot pin and keeps the flat cell-map
  /// loads back to back; `out` must have room for points.size() entries.
  void LookupMany(Span<Point> points, PointLookupResult* out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<PointLookupResult> LookupMany(Span<Point> points) const;

  /// The sealed epoch the aggregates were computed against.
  long long epoch() const { return epoch_; }

  int num_regions() const { return static_cast<int>(aggregates_.size()); }

  /// The flat row-major cell -> region view (zero-copy into the
  /// partition's cell map; pinned by the no-copy test).
  Span<const uint32_t> cell_to_region() const { return cell_to_region_; }

  /// The partition this snapshot serves (shared with the publisher).
  const std::shared_ptr<const Partition>& partition() const {
    return partition_;
  }

  /// The region rects (shared with FairIndexService::regions()).
  const std::shared_ptr<const std::vector<CellRect>>& regions() const {
    return regions_;
  }

  /// Per-region aggregates off epoch(), indexed by region id.
  const std::vector<RegionAggregate>& aggregates() const {
    return aggregates_;
  }

 private:
  PointLookupIndex(const Grid& grid,
                   std::shared_ptr<const Partition> partition,
                   std::shared_ptr<const std::vector<CellRect>> regions,
                   std::vector<RegionAggregate> aggregates, long long epoch)
      : grid_(grid),
        partition_(std::move(partition)),
        regions_(std::move(regions)),
        aggregates_(std::move(aggregates)),
        cell_to_region_(partition_->CellRegionIds()),
        epoch_(epoch) {}

  Grid grid_;
  std::shared_ptr<const Partition> partition_;
  std::shared_ptr<const std::vector<CellRect>> regions_;
  std::vector<RegionAggregate> aggregates_;
  /// View into partition_->cell_to_region() — partition_ keeps it alive.
  Span<const uint32_t> cell_to_region_;
  long long epoch_ = 0;
};

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_POINT_LOOKUP_H_
