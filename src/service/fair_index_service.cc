#include "service/fair_index_service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "service/checkpoint.h"

namespace fairidx {
namespace {

/// Lifts `value` into `target` when larger (relaxed CAS loop — the stall
/// maxima are pure observability).
void FetchMax(std::atomic<long long>* target, long long value) {
  long long current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

/// Wall-clock micros since `start`.
long long MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

FairIndexService::FairIndexService(
    const Grid& grid, FairIndexServiceOptions options,
    std::unique_ptr<WalWriter> wal,
    std::unique_ptr<ShardedDeltaStore> store,
    std::unique_ptr<Partitioner> partitioner)
    : grid_(grid),
      options_(std::move(options)),
      wal_(std::move(wal)),
      store_(std::move(store)),
      partitioner_(std::move(partitioner)) {}

FairIndexService::~FairIndexService() { StopMaintenance(); }

Result<std::unique_ptr<FairIndexService>> FairIndexService::Create(
    const Grid& grid, const AggregateBatch& warmup,
    const FairIndexServiceOptions& options) {
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<Partitioner> partitioner,
      PartitionerRegistry::Global().Create(options.algorithm));
  if (!partitioner->capabilities().supports_refine) {
    return FailedPreconditionError(
        "FairIndexService: partitioner '" + options.algorithm +
        "' does not support incremental maintenance (supports_refine)");
  }
  const DurabilityOptions& durability = options.durability;
  std::unique_ptr<WalWriter> wal;
  if (!durability.wal_dir.empty()) {
    if (durability.keep_checkpoints < 1) {
      return InvalidArgumentError(
          "FairIndexService: keep_checkpoints must be >= 1");
    }
    // A directory that already holds recoverable state must go through
    // Recover — silently truncating someone's log here would BE the data
    // loss the WAL exists to prevent.
    Result<std::vector<WalSegmentInfo>> segments =
        ListWalSegments(durability.wal_dir);
    Result<std::vector<CheckpointInfo>> checkpoints =
        ListCheckpoints(durability.wal_dir);
    if ((segments.ok() && !segments->empty()) ||
        (checkpoints.ok() && !checkpoints->empty())) {
      return FailedPreconditionError(
          "FairIndexService: '" + durability.wal_dir +
          "' already holds WAL/checkpoint state; use Recover, or point "
          "wal_dir at an empty directory");
    }
    WalOptions wal_options;
    wal_options.fsync = durability.fsync;
    wal_options.file_factory = durability.file_factory;
    FAIRIDX_ASSIGN_OR_RETURN(
        wal, WalWriter::Open(durability.wal_dir, /*generation=*/1,
                             /*next_epoch=*/1, wal_options));
  }
  ShardedDeltaStoreOptions store_options = options.store;
  store_options.wal = wal.get();
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedDeltaStore> store,
      ShardedDeltaStore::Build(grid, warmup, store_options));
  // The initial partition keys off sealed epoch 0, exactly like every
  // later refine keys off the epoch it seals.
  std::shared_ptr<const GridAggregates> epoch0 = store->snapshot();
  FAIRIDX_RETURN_IF_ERROR(
      partitioner->BuildFromAggregates(grid, *epoch0, options.build)
          .status());
  std::unique_ptr<FairIndexService> service(
      new FairIndexService(grid, options, std::move(wal), std::move(store),
                           std::move(partitioner)));
  {
    // First publication: the epoch-0 partition paired with the epoch-0
    // snapshot it was built from. lookup() is never null afterwards.
    std::lock_guard<std::mutex> lock(service->maintain_mutex_);
    FAIRIDX_RETURN_IF_ERROR(service->PublishMaintainedLocked(
        *epoch0, service->store_->epoch(), /*partition_changed=*/true));
  }
  if (service->wal_ != nullptr) {
    // The epoch-0 checkpoint carries the warmup state, so recovery never
    // needs the warmup records themselves. Always a full snapshot: it is
    // the base every later delta chains back to.
    FAIRIDX_RETURN_IF_ERROR(
        service->WriteCheckpointNow(/*allow_delta=*/false));
  }
  if (options.auto_maintain) {
    FAIRIDX_RETURN_IF_ERROR(service->StartMaintenance(options.maintain));
  }
  return service;
}

Result<std::unique_ptr<FairIndexService>> FairIndexService::Recover(
    const Grid& grid, const FairIndexServiceOptions& options) {
  const DurabilityOptions& durability = options.durability;
  if (durability.wal_dir.empty()) {
    return InvalidArgumentError(
        "FairIndexService: Recover needs durability.wal_dir");
  }
  if (durability.keep_checkpoints < 1) {
    return InvalidArgumentError(
        "FairIndexService: keep_checkpoints must be >= 1");
  }
  FAIRIDX_ASSIGN_OR_RETURN(CheckpointData checkpoint,
                           LoadLatestCheckpoint(durability.wal_dir));
  if (checkpoint.rows != grid.rows() || checkpoint.cols != grid.cols()) {
    return FailedPreconditionError(
        "FairIndexService: checkpoint grid is " +
        std::to_string(checkpoint.rows) + "x" +
        std::to_string(checkpoint.cols) + ", caller grid is " +
        std::to_string(grid.rows()) + "x" + std::to_string(grid.cols()));
  }
  if (checkpoint.algorithm != options.algorithm) {
    return FailedPreconditionError(
        "FairIndexService: checkpoint was written by '" +
        checkpoint.algorithm + "', options name '" + options.algorithm +
        "'");
  }
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<Partitioner> partitioner,
      PartitionerRegistry::Global().Create(options.algorithm));
  if (!partitioner->capabilities().supports_refine) {
    return FailedPreconditionError(
        "FairIndexService: partitioner '" + options.algorithm +
        "' does not support incremental maintenance (supports_refine)");
  }
  FAIRIDX_RETURN_IF_ERROR(partitioner->RestoreMaintained(
      grid, options.build, checkpoint.maintained_blob));

  // A fresh WAL generation: the replay below re-logs the old tail through
  // the public ingest path, so segment names can never collide with the
  // files being replayed, and a crash mid-recovery leaves both the old
  // checkpoint and the old segments intact.
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                           ListWalSegments(durability.wal_dir));
  long long max_generation = checkpoint.wal_generation;
  for (const WalSegmentInfo& segment : segments) {
    max_generation = std::max(max_generation, segment.generation);
  }
  const long long new_generation = max_generation + 1;
  WalOptions wal_options;
  wal_options.fsync = durability.fsync;
  wal_options.file_factory = durability.file_factory;
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(durability.wal_dir, new_generation,
                      checkpoint.epoch + 1, wal_options));
  ShardedDeltaStoreOptions store_options = options.store;
  store_options.wal = wal.get();
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedDeltaStore> store,
      ShardedDeltaStore::Restore(grid, std::move(checkpoint.cell_sums),
                                 checkpoint.epoch,
                                 checkpoint.sealed_records, store_options));
  std::unique_ptr<FairIndexService> service(
      new FairIndexService(grid, options, std::move(wal), std::move(store),
                           std::move(partitioner)));
  service->total_resplits_ = checkpoint.total_resplits;
  service->last_checkpoint_epoch_ = checkpoint.epoch;
  {
    // Publish the checkpointed partition (now the restored maintained
    // partition) paired with the restored sealed snapshot — the same
    // (partition, epoch) pair the uninterrupted run was serving.
    std::lock_guard<std::mutex> lock(service->maintain_mutex_);
    FAIRIDX_RETURN_IF_ERROR(service->PublishMaintainedLocked(
        *service->store_->snapshot(), checkpoint.epoch,
        /*partition_changed=*/true));
  }
  FAIRIDX_RETURN_IF_ERROR(
      service->ReplayWalTail(segments, checkpoint.epoch));
  // A fresh durable cut: everything replayed now lives in this checkpoint
  // plus the new generation's segments, so the old generation's files can
  // finally go. Always full — a delta here would chain into the old
  // generation this block is about to prune.
  FAIRIDX_RETURN_IF_ERROR(
      service->WriteCheckpointNow(/*allow_delta=*/false));
  {
    FAIRIDX_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> leftover,
                             ListWalSegments(durability.wal_dir));
    std::error_code ec;
    for (const WalSegmentInfo& segment : leftover) {
      if (segment.generation < new_generation) {
        std::filesystem::remove(segment.path, ec);
      }
    }
  }
  if (options.auto_maintain) {
    FAIRIDX_RETURN_IF_ERROR(service->StartMaintenance(options.maintain));
  }
  return service;
}

Status FairIndexService::ReplayWalTail(
    const std::vector<WalSegmentInfo>& segments, long long through_epoch) {
  std::vector<const WalSegmentInfo*> tail;
  for (const WalSegmentInfo& segment : segments) {
    if (segment.epoch > through_epoch) tail.push_back(&segment);
  }
  std::vector<WalRecord> batches;
  // Re-ingest one epoch's batches in their original sequence order: the
  // uninterrupted run's fold sorts its capture by seq, so replaying in
  // seq order (fresh seqs assigned in that same order) reproduces the
  // identical fold order — and bit-identical sealed sums — even when
  // concurrent writers appended to the log out of seq order.
  const auto flush_batches = [&]() -> Status {
    std::stable_sort(batches.begin(), batches.end(),
                     [](const WalRecord& a, const WalRecord& b) {
                       return a.seq < b.seq;
                     });
    for (WalRecord& record : batches) {
      FAIRIDX_RETURN_IF_ERROR(
          store_->Ingest(std::move(record.batch)).status());
    }
    batches.clear();
    return Status::Ok();
  };
  for (size_t i = 0; i < tail.size(); ++i) {
    // Only the final segment may legitimately end mid-record (the crash
    // point); damage anywhere else is real corruption.
    const bool last_segment = i + 1 == tail.size();
    FAIRIDX_ASSIGN_OR_RETURN(
        std::vector<WalRecord> records,
        ReadWalSegment(tail[i]->path, last_segment));
    for (WalRecord& record : records) {
      if (record.type == WalRecord::Type::kBatch) {
        batches.push_back(std::move(record));
        continue;
      }
      FAIRIDX_RETURN_IF_ERROR(flush_batches());
      if (record.refine) {
        KdRefineOptions refine_options;
        refine_options.drift_bound = record.drift_bound;
        FAIRIDX_RETURN_IF_ERROR(MaybeRefine(refine_options).status());
      } else {
        FAIRIDX_RETURN_IF_ERROR(Seal().status());
      }
    }
  }
  // Batches after the last seal record return to the pending set, exactly
  // where the uninterrupted run held them.
  return flush_batches();
}

Result<long long> FairIndexService::Ingest(AggregateBatch batch) {
  FAIRIDX_ASSIGN_OR_RETURN(const long long seq,
                           store_->Ingest(std::move(batch)));
  // Wake the background scheduler (if any) so record-count cadences react
  // to this batch now instead of at the next poll.
  {
    std::lock_guard<std::mutex> lock(scheduler_mutex_);
    if (scheduler_) scheduler_->NotifyIngest();
  }
  return seq;
}

Result<long long> FairIndexService::Seal() {
  FAIRIDX_ASSIGN_OR_RETURN(SealedEpoch sealed, store_->Seal());
  {
    // Refresh the lookup snapshot's aggregates to the epoch this seal
    // published (partition unchanged). Taken AFTER the store's seal lock
    // is released, so the durability/maintain nesting is preserved; the
    // maintain lock orders this against refines, and the epoch guard in
    // PublishMaintainedLocked drops the refresh if a racing refine
    // already published a newer epoch.
    std::lock_guard<std::mutex> lock(maintain_mutex_);
    FAIRIDX_RETURN_IF_ERROR(PublishMaintainedLocked(
        *sealed.snapshot, sealed.epoch, /*partition_changed=*/false));
  }
  FAIRIDX_RETURN_IF_ERROR(MaybeCheckpoint());
  return sealed.epoch;
}

std::shared_ptr<const std::vector<CellRect>> FairIndexService::regions()
    const {
  std::lock_guard<std::mutex> lock(regions_mutex_);
  return regions_;
}

std::vector<RegionAggregate> FairIndexService::QueryRegions() const {
  // Grab both publication points once: the partition snapshot and the
  // sealed aggregate snapshot each stay valid however many refines or
  // seals land while the query runs.
  const std::shared_ptr<const std::vector<CellRect>> rects = regions();
  return store_->snapshot()->QueryMany(*rects);
}

std::vector<RegionAggregate> FairIndexService::Query(
    Span<CellRect> rects) const {
  return store_->QueryMany(rects);
}

std::shared_ptr<const PointLookupIndex> FairIndexService::lookup() const {
  std::lock_guard<std::mutex> lock(regions_mutex_);
  return lookup_;
}

PointLookupResult FairIndexService::Lookup(const Point& p) const {
  return lookup()->Lookup(p);
}

void FairIndexService::LookupMany(Span<Point> points,
                                  PointLookupResult* out) const {
  // One snapshot pin for the whole batch: every answer comes from the
  // same partition and sealed epoch, whatever publishes meanwhile.
  lookup()->LookupMany(points, out);
}

std::vector<PointLookupResult> FairIndexService::LookupMany(
    Span<Point> points) const {
  return lookup()->LookupMany(points);
}

Result<ServiceRefineResult> FairIndexService::MaybeRefine(
    const KdRefineOptions& options) {
  ServiceRefineResult out;
  {
    std::lock_guard<std::mutex> lock(maintain_mutex_);
    // The sealed (epoch, snapshot) pair is captured atomically: later
    // concurrent seals publish new snapshots, but this maintenance pass
    // keys every drift evaluation and re-split off the one it sealed.
    // The seal record carries the refine tag and drift bound so replay
    // re-runs this exact pass at this exact cut.
    SealAnnotation annotation;
    annotation.refine = true;
    annotation.drift_bound = options.drift_bound;
    FAIRIDX_ASSIGN_OR_RETURN(const SealedEpoch sealed,
                             store_->Seal(annotation));
    out.epoch = sealed.epoch;
    // Refine evaluates drift itself (one batched leaf query + bottom-up
    // sums) and is an exact no-op when nothing moved past the bound, so no
    // separate WouldRefine round-trip is needed here.
    FAIRIDX_ASSIGN_OR_RETURN(out.stats,
                             partitioner_->Refine(*sealed.snapshot, options));
    if (out.stats.changed) {
      total_resplits_ += out.stats.subtrees_rebuilt;
      if (out.stats.patched_in_place || out.stats.patched_splice) {
        ++publications_patched_;
      } else {
        ++publications_fallback_;
      }
    }
    // Publish either way: a changed pass swaps regions_ and the lookup
    // snapshot together (same rects object); an unchanged pass refreshes
    // the lookup aggregates to the epoch it just sealed WITHOUT touching
    // regions_ (zero-drift passes must not republish the region list —
    // pinned by the scheduler's pointer-identity test).
    FAIRIDX_RETURN_IF_ERROR(PublishMaintainedLocked(
        *sealed.snapshot, sealed.epoch, out.stats.changed));
  }
  // Outside maintain_mutex_: checkpointing takes durability -> maintain.
  FAIRIDX_RETURN_IF_ERROR(MaybeCheckpoint());
  return out;
}

long long FairIndexService::total_resplits() const {
  std::lock_guard<std::mutex> lock(maintain_mutex_);
  return total_resplits_;
}

long long FairIndexService::publications_patched() const {
  std::lock_guard<std::mutex> lock(maintain_mutex_);
  return publications_patched_;
}

long long FairIndexService::publications_fallback() const {
  std::lock_guard<std::mutex> lock(maintain_mutex_);
  return publications_fallback_;
}

Status FairIndexService::StartMaintenance(const MaintenancePolicy& policy) {
  if (policy.seal_records <= 0 && policy.seal_interval_seconds <= 0.0) {
    return InvalidArgumentError(
        "FairIndexService: maintenance policy would never act (enable "
        "seal_records or seal_interval_seconds)");
  }
  if (!(policy.poll_interval_seconds > 0.0)) {
    return InvalidArgumentError(
        "FairIndexService: poll_interval_seconds must be > 0");
  }
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  if (scheduler_ != nullptr && scheduler_->running()) {
    return FailedPreconditionError(
        "FairIndexService: maintenance is already running");
  }
  scheduler_ = std::make_unique<MaintenanceScheduler>(this, policy);
  scheduler_->Start();
  return Status::Ok();
}

void FairIndexService::StopMaintenance() {
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  if (scheduler_ != nullptr) scheduler_->Stop();
}

bool FairIndexService::maintenance_running() const {
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  return scheduler_ != nullptr && scheduler_->running();
}

MaintenanceStats FairIndexService::maintenance_stats() const {
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  return scheduler_ != nullptr ? scheduler_->stats() : MaintenanceStats{};
}

Status FairIndexService::PublishMaintainedLocked(
    const GridAggregates& sealed_snapshot, long long epoch,
    bool partition_changed) {
  const auto publish_start = std::chrono::steady_clock::now();
  // Reuse the published partition/rects objects when the partition did
  // not change: readers' pointer-identity expectations stay exact and
  // the only fresh allocation is the aggregate table.
  std::shared_ptr<const Partition> partition;
  std::shared_ptr<const std::vector<CellRect>> rects;
  if (!partition_changed) {
    std::lock_guard<std::mutex> lock(regions_mutex_);
    if (lookup_ != nullptr) {
      partition = lookup_->partition();
      rects = lookup_->regions();
    }
  }
  if (partition == nullptr) {
    // One flat copy of the maintained cell map: the tree maintainers
    // patch their partition in place on later refines, so the published
    // snapshot must own frozen storage.
    const PartitionResult* maintained = partitioner_->maintained();
    partition = std::make_shared<const Partition>(maintained->partition);
    rects =
        std::make_shared<const std::vector<CellRect>>(maintained->regions);
  }
  std::vector<RegionAggregate> aggregates = sealed_snapshot.QueryMany(*rects);
  FAIRIDX_ASSIGN_OR_RETURN(
      PointLookupIndex fresh,
      PointLookupIndex::Build(grid_, std::move(partition), rects,
                              std::move(aggregates), epoch));
  auto published = std::make_shared<const PointLookupIndex>(std::move(fresh));
  std::lock_guard<std::mutex> lock(regions_mutex_);
  if (partition_changed) regions_ = rects;
  // Epoch-monotonic guard: a caller Seal whose refresh lost the race to
  // a refine's newer publication must not resurrect older aggregates —
  // or, worse, pair them with a partition readers already moved past.
  // (A partition-changing publish can never be rejected: every competing
  // publication seals its epoch under maintain_mutex_, so any previously
  // published epoch is strictly older.)
  if (lookup_ == nullptr || epoch >= lookup_->epoch()) {
    lookup_ = std::move(published);
  }
  FetchMax(&max_publish_stall_us_, MicrosSince(publish_start));
  return Status::Ok();
}

Status FairIndexService::Checkpoint() {
  if (wal_ == nullptr) {
    return FailedPreconditionError(
        "FairIndexService: durability is disabled (no wal_dir)");
  }
  return WriteCheckpointNow(/*allow_delta=*/true);
}

int FairIndexService::ApplyRetention(int keep_last) {
  return store_->RetainEpochs(keep_last);
}

long long FairIndexService::last_checkpoint_epoch() const {
  std::lock_guard<std::mutex> lock(durability_mutex_);
  return last_checkpoint_epoch_;
}

Status FairIndexService::MaybeCheckpoint() {
  if (wal_ == nullptr || options_.durability.checkpoint_interval <= 0) {
    return Status::Ok();
  }
  {
    std::lock_guard<std::mutex> lock(durability_mutex_);
    if (store_->epoch() - last_checkpoint_epoch_ <
        options_.durability.checkpoint_interval) {
      return Status::Ok();
    }
  }
  // Two threads may both decide to checkpoint here; WriteCheckpointNow
  // serializes them and the loser just captures slightly newer state.
  return WriteCheckpointNow(/*allow_delta=*/true);
}

Status FairIndexService::WriteCheckpointNow(bool allow_delta) {
  const auto checkpoint_start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> durability_lock(durability_mutex_);
  const long long generation = wal_->generation();
  // The full_snapshot_interval cadence: every Nth checkpoint (and every
  // forced one) is a full snapshot; the rest carry only the cells dirtied
  // since the previous checkpoint file. A delta additionally needs an
  // epoch strictly past the last checkpoint's — a same-epoch delta would
  // name itself as its own predecessor — and a full base from this run's
  // generation (deltas never chain across a recovery).
  const bool write_delta =
      allow_delta && options_.durability.full_snapshot_interval > 1 &&
      has_full_base_ && generation == last_checkpoint_generation_ &&
      checkpoints_since_full_ + 1 <
          options_.durability.full_snapshot_interval &&
      store_->epoch() > last_checkpoint_epoch_;

  long long checkpoint_epoch = 0;
  if (write_delta) {
    CheckpointDelta delta;
    delta.rows = store_->rows();
    delta.cols = store_->cols();
    delta.algorithm = options_.algorithm;
    delta.wal_generation = generation;
    delta.prev_epoch = last_checkpoint_epoch_;
    delta.prev_generation = last_checkpoint_generation_;
    {
      // Same pinning argument as the full path below; the dirty capture
      // is one atomic read under the store's seal lock, so its epoch /
      // record counters / cell values are a consistent sealed state.
      std::lock_guard<std::mutex> maintain_lock(maintain_mutex_);
      ShardedDeltaStore::DirtyCells dirty =
          store_->CaptureDirtySince(last_checkpoint_epoch_);
      delta.epoch = dirty.epoch;
      delta.sealed_records = dirty.sealed_records;
      delta.cells = std::move(dirty.cells);
      delta.sums = std::move(dirty.sums);
      delta.total_resplits = total_resplits_;
      FAIRIDX_ASSIGN_OR_RETURN(delta.maintained_blob,
                               partitioner_->SaveMaintained());
      delta.regions = partitioner_->maintained()->regions;
    }
    FAIRIDX_RETURN_IF_ERROR(
        WriteDeltaCheckpoint(options_.durability.wal_dir, delta,
                             options_.durability.file_factory));
    checkpoint_epoch = delta.epoch;
    ++checkpoints_since_full_;
  } else {
    CheckpointData data;
    data.rows = store_->rows();
    data.cols = store_->cols();
    data.algorithm = options_.algorithm;
    data.wal_generation = generation;
    {
      // maintain_mutex_ pins the (sealed state, maintained partition)
      // pair: CaptureSealedState is atomic against folds, and no refine
      // can slide the partition to a newer epoch between the two
      // captures.
      std::lock_guard<std::mutex> maintain_lock(maintain_mutex_);
      ShardedDeltaStore::SealedState sealed = store_->CaptureSealedState();
      data.epoch = sealed.epoch;
      data.sealed_records = sealed.sealed_records;
      data.cell_sums = std::move(sealed.cell_sums);
      data.total_resplits = total_resplits_;
      FAIRIDX_ASSIGN_OR_RETURN(data.maintained_blob,
                               partitioner_->SaveMaintained());
      const PartitionResult* maintained = partitioner_->maintained();
      data.partition = maintained->partition;
      data.regions = maintained->regions;
    }
    FAIRIDX_RETURN_IF_ERROR(
        WriteCheckpoint(options_.durability.wal_dir, data,
                        options_.durability.file_factory));
    checkpoint_epoch = data.epoch;
    checkpoints_since_full_ = 0;
    has_full_base_ = true;
  }
  FAIRIDX_RETURN_IF_ERROR(PruneCheckpoints(
      options_.durability.wal_dir, options_.durability.keep_checkpoints));
  // Every record in a segment whose name epoch <= the checkpointed epoch
  // is folded into the checkpointed cell sums (a delta's chain included),
  // so those segments are dead weight.
  FAIRIDX_RETURN_IF_ERROR(
      PruneWalSegments(options_.durability.wal_dir, checkpoint_epoch));
  last_checkpoint_epoch_ = checkpoint_epoch;
  last_checkpoint_generation_ = generation;
  FetchMax(&max_checkpoint_stall_us_, MicrosSince(checkpoint_start));
  return Status::Ok();
}

}  // namespace fairidx
