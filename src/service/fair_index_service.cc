#include "service/fair_index_service.h"

#include <utility>

namespace fairidx {

FairIndexService::FairIndexService(
    FairIndexServiceOptions options,
    std::unique_ptr<ShardedDeltaStore> store,
    std::unique_ptr<Partitioner> partitioner)
    : options_(std::move(options)),
      store_(std::move(store)),
      partitioner_(std::move(partitioner)) {}

FairIndexService::~FairIndexService() { StopMaintenance(); }

Result<std::unique_ptr<FairIndexService>> FairIndexService::Create(
    const Grid& grid, const AggregateBatch& warmup,
    const FairIndexServiceOptions& options) {
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<Partitioner> partitioner,
      PartitionerRegistry::Global().Create(options.algorithm));
  if (!partitioner->capabilities().supports_refine) {
    return FailedPreconditionError(
        "FairIndexService: partitioner '" + options.algorithm +
        "' does not support incremental maintenance (supports_refine)");
  }
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedDeltaStore> store,
      ShardedDeltaStore::Build(grid, warmup, options.store));
  // The initial partition keys off sealed epoch 0, exactly like every
  // later refine keys off the epoch it seals.
  std::shared_ptr<const GridAggregates> epoch0 = store->snapshot();
  FAIRIDX_ASSIGN_OR_RETURN(
      const PartitionResult* built,
      partitioner->BuildFromAggregates(grid, *epoch0, options.build));
  std::unique_ptr<FairIndexService> service(new FairIndexService(
      options, std::move(store), std::move(partitioner)));
  service->PublishRegions(built->regions);
  if (options.auto_maintain) {
    FAIRIDX_RETURN_IF_ERROR(service->StartMaintenance(options.maintain));
  }
  return service;
}

Result<long long> FairIndexService::Ingest(AggregateBatch batch) {
  FAIRIDX_ASSIGN_OR_RETURN(const long long seq,
                           store_->Ingest(std::move(batch)));
  // Wake the background scheduler (if any) so record-count cadences react
  // to this batch now instead of at the next poll.
  {
    std::lock_guard<std::mutex> lock(scheduler_mutex_);
    if (scheduler_) scheduler_->NotifyIngest();
  }
  return seq;
}

Result<long long> FairIndexService::Seal() {
  FAIRIDX_ASSIGN_OR_RETURN(SealedEpoch sealed, store_->Seal());
  return sealed.epoch;
}

std::shared_ptr<const std::vector<CellRect>> FairIndexService::regions()
    const {
  std::lock_guard<std::mutex> lock(regions_mutex_);
  return regions_;
}

std::vector<RegionAggregate> FairIndexService::QueryRegions() const {
  // Grab both publication points once: the partition snapshot and the
  // sealed aggregate snapshot each stay valid however many refines or
  // seals land while the query runs.
  const std::shared_ptr<const std::vector<CellRect>> rects = regions();
  return store_->snapshot()->QueryMany(*rects);
}

std::vector<RegionAggregate> FairIndexService::Query(
    Span<CellRect> rects) const {
  return store_->QueryMany(rects);
}

Result<ServiceRefineResult> FairIndexService::MaybeRefine(
    const KdRefineOptions& options) {
  std::lock_guard<std::mutex> lock(maintain_mutex_);
  // The sealed (epoch, snapshot) pair is captured atomically: later
  // concurrent seals publish new snapshots, but this maintenance pass
  // keys every drift evaluation and re-split off the one it sealed.
  FAIRIDX_ASSIGN_OR_RETURN(const SealedEpoch sealed, store_->Seal());
  ServiceRefineResult out;
  out.epoch = sealed.epoch;
  // Refine evaluates drift itself (one batched leaf query + bottom-up
  // sums) and is an exact no-op when nothing moved past the bound, so no
  // separate WouldRefine round-trip is needed here.
  FAIRIDX_ASSIGN_OR_RETURN(out.stats,
                           partitioner_->Refine(*sealed.snapshot, options));
  if (out.stats.changed) {
    total_resplits_ += out.stats.subtrees_rebuilt;
    PublishRegions(partitioner_->maintained()->regions);
  }
  return out;
}

long long FairIndexService::total_resplits() const {
  std::lock_guard<std::mutex> lock(maintain_mutex_);
  return total_resplits_;
}

Status FairIndexService::StartMaintenance(const MaintenancePolicy& policy) {
  if (policy.seal_records <= 0 && policy.seal_interval_seconds <= 0.0) {
    return InvalidArgumentError(
        "FairIndexService: maintenance policy would never act (enable "
        "seal_records or seal_interval_seconds)");
  }
  if (!(policy.poll_interval_seconds > 0.0)) {
    return InvalidArgumentError(
        "FairIndexService: poll_interval_seconds must be > 0");
  }
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  if (scheduler_ != nullptr && scheduler_->running()) {
    return FailedPreconditionError(
        "FairIndexService: maintenance is already running");
  }
  scheduler_ = std::make_unique<MaintenanceScheduler>(this, policy);
  scheduler_->Start();
  return Status::Ok();
}

void FairIndexService::StopMaintenance() {
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  if (scheduler_ != nullptr) scheduler_->Stop();
}

bool FairIndexService::maintenance_running() const {
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  return scheduler_ != nullptr && scheduler_->running();
}

MaintenanceStats FairIndexService::maintenance_stats() const {
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  return scheduler_ != nullptr ? scheduler_->stats() : MaintenanceStats{};
}

void FairIndexService::PublishRegions(const std::vector<CellRect>& fresh) {
  auto published = std::make_shared<const std::vector<CellRect>>(fresh);
  std::lock_guard<std::mutex> lock(regions_mutex_);
  regions_ = std::move(published);
}

}  // namespace fairidx
