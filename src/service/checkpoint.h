// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Sealed-snapshot checkpoints for the serving layer: a checkpoint file
// captures everything FairIndexService needs to resume from a sealed
// epoch without replaying the whole WAL — the store's cumulative per-cell
// sums (the canonical FromCellSums input, so the rebuilt snapshot is
// bit-identical), the published partition and region rects, the
// partitioner's full maintenance state (Partitioner::SaveMaintained), the
// epoch / record counters, and the WAL generation that positions the file
// against the log. Recovery loads the newest valid checkpoint and replays
// only WAL segments with epoch > checkpoint epoch.
//
// Files are named `checkpoint-<epoch>-<generation>.ckpt` and written
// atomically: serialize to `<name>.tmp`, fsync, rename. The body is one
// CRC32-framed block, so a torn or corrupt checkpoint is detected on read
// and LoadLatestCheckpoint falls back to the previous one.

#ifndef FAIRIDX_SERVICE_CHECKPOINT_H_
#define FAIRIDX_SERVICE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geo/grid_aggregates.h"
#include "geo/rect.h"
#include "index/partition.h"
#include "service/wal.h"

namespace fairidx {

/// One recoverable serving state (see file header).
struct CheckpointData {
  int rows = 0;
  int cols = 0;
  long long epoch = 0;
  long long sealed_records = 0;
  /// WAL generation current when the checkpoint was written; recovery
  /// replays segments with epoch > `epoch` and opens generation
  /// max(this, on-disk) + 1.
  long long wal_generation = 1;
  /// Service lifetime re-split counter, restored for observability.
  long long total_resplits = 0;
  /// Registry name of the partitioner (sanity-checked on recover).
  std::string algorithm;
  /// The store's cumulative per-cell sums over every sealed record.
  std::vector<GridAggregates::PrefixEntry> cell_sums;
  /// The published partition and its region rects, region ids verbatim.
  Partition partition = Partition::Single(1);
  std::vector<CellRect> regions;
  /// Partitioner::SaveMaintained blob (empty when unavailable).
  std::string maintained_blob;
};

/// One on-disk checkpoint file, parsed from its name.
struct CheckpointInfo {
  long long epoch = 0;
  long long generation = 0;
  std::string path;
};

std::string CheckpointFileName(long long epoch, long long generation);

/// The checkpoint files under `dir`, sorted ascending by
/// (epoch, generation). Non-checkpoint files are ignored.
Result<std::vector<CheckpointInfo>> ListCheckpoints(const std::string& dir);

/// Serializes `data` and atomically installs it as
/// dir/checkpoint-<epoch>-<generation>.ckpt (tmp + fsync + rename).
/// `file_factory` is the fault-injection seam; null uses OpenWritableFile.
Status WriteCheckpoint(const std::string& dir, const CheckpointData& data,
                       const WritableFileFactory& file_factory = nullptr);

/// Reads and validates one checkpoint file (magic, version, CRC,
/// structural checks). Torn or corrupt files fail with DataLoss.
Result<CheckpointData> ReadCheckpoint(const std::string& path);

/// Loads the newest checkpoint under `dir` that validates, skipping
/// corrupt/torn ones; NotFound when none does (or none exists).
Result<CheckpointData> LoadLatestCheckpoint(const std::string& dir);

/// Deletes all but the newest `keep_last` checkpoint files.
Status PruneCheckpoints(const std::string& dir, int keep_last);

/// Deletes WAL segments whose records are fully covered by a checkpoint
/// at `through_epoch` (segment epoch <= through_epoch, any generation).
Status PruneWalSegments(const std::string& dir, long long through_epoch);

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_CHECKPOINT_H_
