// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Sealed-snapshot checkpoints for the serving layer: a checkpoint file
// captures everything FairIndexService needs to resume from a sealed
// epoch without replaying the whole WAL — the store's cumulative per-cell
// sums (the canonical FromCellSums input, so the rebuilt snapshot is
// bit-identical), the published partition and region rects, the
// partitioner's full maintenance state (Partitioner::SaveMaintained), the
// epoch / record counters, and the WAL generation that positions the file
// against the log. Recovery loads the newest valid checkpoint and replays
// only WAL segments with epoch > checkpoint epoch.
//
// Files are named `checkpoint-<epoch>-<generation>.ckpt` and written
// atomically: serialize to `<name>.tmp`, fsync, rename. The body is one
// CRC32-framed block, so a torn or corrupt checkpoint is detected on read
// and LoadLatestCheckpoint falls back to the previous one.
//
// Delta checkpoints (`delta-<epoch>-<generation>.ckpt`) make the steady-
// state checkpoint cost O(changed) instead of O(grid): a delta carries
// only the cells DIRTIED since its predecessor checkpoint — with their
// ABSOLUTE cumulative sums, so applying a chain is pure overwrite — plus
// the region rects and the (tree-sized) maintenance blob. Each delta
// names its immediate predecessor (full or delta) by (epoch, generation);
// LoadLatestCheckpoint resolves the newest head by walking prev links
// back to a full checkpoint and overlaying the deltas oldest-first, and
// falls back to the next-older head when any link is missing or corrupt.
// The resolved state is bit-identical to the full checkpoint a
// WriteCheckpoint at the head's epoch would have captured.

#ifndef FAIRIDX_SERVICE_CHECKPOINT_H_
#define FAIRIDX_SERVICE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geo/grid_aggregates.h"
#include "geo/rect.h"
#include "index/partition.h"
#include "service/wal.h"

namespace fairidx {

/// One recoverable serving state (see file header).
struct CheckpointData {
  int rows = 0;
  int cols = 0;
  long long epoch = 0;
  long long sealed_records = 0;
  /// WAL generation current when the checkpoint was written; recovery
  /// replays segments with epoch > `epoch` and opens generation
  /// max(this, on-disk) + 1.
  long long wal_generation = 1;
  /// Service lifetime re-split counter, restored for observability.
  long long total_resplits = 0;
  /// Registry name of the partitioner (sanity-checked on recover).
  std::string algorithm;
  /// The store's cumulative per-cell sums over every sealed record.
  std::vector<GridAggregates::PrefixEntry> cell_sums;
  /// The published partition and its region rects, region ids verbatim.
  Partition partition = Partition::Single(1);
  std::vector<CellRect> regions;
  /// Partitioner::SaveMaintained blob (empty when unavailable).
  std::string maintained_blob;
};

/// One incremental checkpoint: the cells dirtied since the predecessor
/// checkpoint at (prev_epoch, prev_generation), with their absolute
/// cumulative sums (overlay semantics), plus the small derived state
/// that is cheaper to rewrite than to diff (rects, maintenance blob).
struct CheckpointDelta {
  int rows = 0;
  int cols = 0;
  long long epoch = 0;
  long long sealed_records = 0;
  long long wal_generation = 1;
  long long total_resplits = 0;
  std::string algorithm;
  /// The immediate predecessor checkpoint in the chain — a full
  /// checkpoint or an older delta.
  long long prev_epoch = 0;
  long long prev_generation = 0;
  /// Dirty cell ids (ascending) and their absolute cumulative sums.
  std::vector<int> cells;
  std::vector<GridAggregates::PrefixEntry> sums;
  /// The published region rects at `epoch` (region i owns rect i); the
  /// resolved partition is rebuilt from these.
  std::vector<CellRect> regions;
  /// Partitioner::SaveMaintained blob (empty when unavailable).
  std::string maintained_blob;
};

/// One on-disk checkpoint file, parsed from its name.
struct CheckpointInfo {
  long long epoch = 0;
  long long generation = 0;
  std::string path;
};

std::string CheckpointFileName(long long epoch, long long generation);
std::string DeltaCheckpointFileName(long long epoch, long long generation);

/// The FULL checkpoint files under `dir`, sorted ascending by
/// (epoch, generation). Delta and non-checkpoint files are ignored.
Result<std::vector<CheckpointInfo>> ListCheckpoints(const std::string& dir);

/// The DELTA checkpoint files under `dir`, sorted ascending by
/// (epoch, generation). Full and non-checkpoint files are ignored.
Result<std::vector<CheckpointInfo>> ListDeltaCheckpoints(
    const std::string& dir);

/// Serializes `data` and atomically installs it as
/// dir/checkpoint-<epoch>-<generation>.ckpt (tmp + fsync + rename).
/// `file_factory` is the fault-injection seam; null uses OpenWritableFile.
Status WriteCheckpoint(const std::string& dir, const CheckpointData& data,
                       const WritableFileFactory& file_factory = nullptr);

/// Serializes `delta` and atomically installs it as
/// dir/delta-<epoch>-<generation>.ckpt (same tmp + fsync + rename and
/// CRC framing as WriteCheckpoint).
Status WriteDeltaCheckpoint(const std::string& dir,
                            const CheckpointDelta& delta,
                            const WritableFileFactory& file_factory = nullptr);

/// Reads and validates one checkpoint file (magic, version, CRC,
/// structural checks). Torn or corrupt files fail with DataLoss.
Result<CheckpointData> ReadCheckpoint(const std::string& path);

/// Reads and validates one delta checkpoint file (magic, version, CRC,
/// ascending in-grid cells). Torn or corrupt files fail with DataLoss.
Result<CheckpointDelta> ReadDeltaCheckpoint(const std::string& path);

/// Loads the newest recoverable state under `dir`, skipping corrupt/torn
/// heads; NotFound when none resolves (or none exists). A full-checkpoint
/// head loads directly; a delta head resolves its chain (see file
/// header), and a chain with a missing, corrupt, or cyclic link is
/// skipped like a corrupt full checkpoint.
Result<CheckpointData> LoadLatestCheckpoint(const std::string& dir);

/// Deletes all but the newest `keep_last` FULL checkpoint files, plus
/// every delta older than the oldest kept full (such deltas can only
/// chain to already-pruned state). Deltas newer than the oldest kept
/// full are retained — they may be the live chain head.
Status PruneCheckpoints(const std::string& dir, int keep_last);

/// Deletes WAL segments whose records are fully covered by a checkpoint
/// at `through_epoch` (segment epoch <= through_epoch, any generation).
Status PruneWalSegments(const std::string& dir, long long through_epoch);

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_CHECKPOINT_H_
