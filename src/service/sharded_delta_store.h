// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// ShardedDeltaStore: the concurrent serving-layer aggregate store. The
// single-writer DeltaGridAggregates overlay cannot overlap ingest with
// queries; this store can. Writers append seq-tagged batches to the
// pending set, readers query the last SEALED immutable GridAggregates
// snapshot, and Seal() advances the epoch by folding every pending batch
// into a fresh snapshot on the shared ThreadPool — one task per shard.
// Each shard owns a contiguous balanced range of cell ids; its dirty set
// is the restriction of the pending batches to that range, materialized
// by its fold task, so the parallel writes into the dense per-cell sums
// are range-disjoint and never share a cache line.
//
// Epoch lifecycle:
//
//     Ingest(batch)  ->  pending (per-shard slices, tagged with the
//                        batch's global sequence number)
//     Seal()         ->  cut: swap out all pending slices at a consistent
//                        batch boundary, fold them (per shard, in seq
//                        order) into the cumulative per-cell sums,
//                        integrate a fresh prefix snapshot, epoch += 1
//     Query*()       ->  the last sealed snapshot only (never pending)
//
// Determinism: every cell belongs to exactly one shard and each shard
// applies the captured batches in batch-sequence order (in-batch order
// within a batch), so each cell's sums are accumulated in exactly the
// order a serial single-writer replay of the same batch sequence would
// use. Folds integrate through GridAggregates::FromCellSums — the same
// path DeltaGridAggregates::Rebuild takes — so a sealed snapshot is
// bit-identical to that serial replay at ANY shard count and ANY writer
// interleaving. num_shards == 1 degenerates to the single-writer
// overlay's fold (one shard, one arrival-order pass): the overlay is the
// 1-shard specialization, not a separate code path.
//
// Thread-safety: Ingest / Seal / Query* / stats may all be called
// concurrently from any thread. Ingest blocks only while a Seal takes its
// cut (a few pointer swaps); the O(UV) fold itself runs outside that
// window. Seals are serialized with each other.

#ifndef FAIRIDX_SERVICE_SHARDED_DELTA_STORE_H_
#define FAIRIDX_SERVICE_SHARDED_DELTA_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "geo/grid.h"
#include "geo/grid_aggregates.h"
#include "geo/rect.h"

namespace fairidx {

class WalWriter;  // service/wal.h (which includes this header).

/// One ingest batch: parallel record vectors under the GridAggregates
/// Build contract (labels 0/1, in-grid cells; `residuals` empty defaults
/// each record's residual to score - label).
struct AggregateBatch {
  std::vector<int> cell_ids;
  std::vector<int> labels;
  std::vector<double> scores;
  std::vector<double> residuals;

  size_t size() const { return cell_ids.size(); }

  void Append(int cell_id, int label, double score) {
    cell_ids.push_back(cell_id);
    labels.push_back(label);
    scores.push_back(score);
  }

  /// The records [begin, end) as a fresh batch (residuals sliced when
  /// present) — the stream drivers' per-batch carve.
  AggregateBatch Slice(size_t begin, size_t end) const {
    AggregateBatch out;
    out.cell_ids.assign(cell_ids.begin() + begin, cell_ids.begin() + end);
    out.labels.assign(labels.begin() + begin, labels.begin() + end);
    out.scores.assign(scores.begin() + begin, scores.begin() + end);
    if (!residuals.empty()) {
      out.residuals.assign(residuals.begin() + begin,
                           residuals.begin() + end);
    }
    return out;
  }
};

/// One sealed epoch: its number and the immutable snapshot it published,
/// captured atomically by Seal() (a later concurrent seal cannot swap a
/// newer snapshot into this pair).
struct SealedEpoch {
  long long epoch = 0;
  std::shared_ptr<const GridAggregates> snapshot;
};

/// Tuning for the sharded store.
struct ShardedDeltaStoreOptions {
  /// Number of cell-ownership shards (>= 1). More shards reduce writer
  /// contention and widen the seal fold's parallelism; sealed snapshots
  /// are identical at any value.
  int num_shards = 1;
  /// Max parallelism for the per-shard fold work inside Seal (submitted to
  /// the shared ThreadPool). <= 1 folds on the sealing thread in one
  /// sequence-order pass — which is also what a fold degenerates to when
  /// the shared pool has no workers (single-core hosts), since the
  /// sharded fold's duplicated range scans only pay off when they
  /// actually run concurrently. Either fold accumulates every cell in
  /// the identical serial-replay order.
  int num_threads = 1;
  /// Testing seam: take the sharded range-fold path even on a workerless
  /// pool, so its determinism is pinned on any host.
  bool force_sharded_fold = false;
  /// Optional write-ahead log (service/wal.h), not owned; must outlive
  /// the store. When set, Ingest appends every accepted batch to the log
  /// BEFORE it joins the pending set (a failed append rejects the batch),
  /// and Seal writes its cut record inside the exclusive ingest-gate
  /// window, so WAL file order equals cut order.
  WalWriter* wal = nullptr;
};

/// Maintenance context for a cut, recorded in the WAL so recovery replays
/// the exact seal/refine schedule: `refine` marks a cut taken by
/// MaybeRefine (replay re-runs the refine at `drift_bound` at the same
/// point in the record sequence).
struct SealAnnotation {
  bool refine = false;
  double drift_bound = 0.0;
};

/// Epoch-based sharded aggregate store (see file header).
class ShardedDeltaStore {
 public:
  /// Creates the store and seals epoch 0 over the `warmup` records (pass
  /// an empty batch for an empty epoch-0 snapshot).
  static Result<std::unique_ptr<ShardedDeltaStore>> Build(
      const Grid& grid, const AggregateBatch& warmup,
      const ShardedDeltaStoreOptions& options = {});

  /// Recreates a store from checkpointed sealed state (see
  /// service/checkpoint.h): `cell_sums` are the cumulative per-cell sums
  /// a previous store's CaptureSealedState returned at `epoch` /
  /// `sealed_records`. The rebuilt snapshot goes through FromCellSums —
  /// the same integration every Seal takes — so it is bit-identical to
  /// the snapshot the captured store was serving.
  static Result<std::unique_ptr<ShardedDeltaStore>> Restore(
      const Grid& grid, std::vector<GridAggregates::PrefixEntry> cell_sums,
      long long epoch, long long sealed_records,
      const ShardedDeltaStoreOptions& options = {});

  ShardedDeltaStore(const ShardedDeltaStore&) = delete;
  ShardedDeltaStore& operator=(const ShardedDeltaStore&) = delete;

  /// Validates the whole batch (rejecting it atomically on any bad
  /// record), assigns it the next global sequence number and appends it
  /// to the pending set. Thread-safe; returns the assigned sequence
  /// number, which is the batch's position in the equivalent serial
  /// replay. By value: callers that pass a temporary (the common
  /// build-a-batch-and-ingest loop) move, lvalue callers copy.
  Result<long long> Ingest(AggregateBatch batch);

  /// Folds all pending batches into a fresh immutable snapshot and
  /// publishes it (see file header). A seal with nothing pending keeps
  /// the current epoch. Returns the (possibly unchanged) epoch number
  /// PAIRED with its snapshot — maintenance that must key off exactly
  /// the epoch it sealed uses the pair, not a separate snapshot() call a
  /// concurrent seal could race past.
  Result<SealedEpoch> Seal() { return Seal(SealAnnotation{}); }

  /// Seal with a maintenance annotation: when a WAL is attached, the cut
  /// record carries `annotation` so recovery re-runs the same refine at
  /// the same point in the record sequence. An empty plain cut (nothing
  /// pending, no refine) logs nothing; an empty refine-tagged cut logs a
  /// mid-segment record; a capturing cut rotates the WAL segment.
  Result<SealedEpoch> Seal(const SealAnnotation& annotation);

  /// Consistent snapshot of the sealed state for checkpointing: the
  /// epoch, the records it covers, and the cumulative per-cell sums that
  /// regenerate its GridAggregates bit-identically via Restore. Taken
  /// under the seal lock, so it can never interleave with a fold.
  struct SealedState {
    long long epoch = 0;
    long long sealed_records = 0;
    std::vector<GridAggregates::PrefixEntry> cell_sums;
  };
  SealedState CaptureSealedState() const;

  /// Consistent snapshot of the cells DIRTIED by seals after
  /// `since_epoch`, with their current cumulative sums — the payload of a
  /// delta checkpoint (service/checkpoint.h). `cells` is ascending and
  /// `sums` parallel; the values are absolute (overwrite semantics), so
  /// replaying base sums + every delta's writes in chain order
  /// regenerates CaptureSealedState().cell_sums bitwise. Cells touched by
  /// the warmup fold count as dirtied at epoch 0; cells a Restore
  /// repopulated are NOT tracked (the durability layer always follows a
  /// restore with a full snapshot). Taken under the seal lock.
  struct DirtyCells {
    long long epoch = 0;
    long long sealed_records = 0;
    std::vector<int> cells;
    std::vector<GridAggregates::PrefixEntry> sums;
  };
  DirtyCells CaptureDirtySince(long long since_epoch) const;

  /// Epoch-retention: drops the oldest retained SealedEpoch entries,
  /// keeping the newest `keep_last` plus any older entry whose snapshot
  /// is still externally pinned (a reader holds the shared_ptr). Returns
  /// the number of entries dropped. keep_last < 1 keeps the newest entry
  /// only.
  int RetainEpochs(int keep_last);

  /// Retained sealed epochs (monotone history kept for readers; bounded
  /// by RetainEpochs).
  int history_size() const;

  /// The last sealed snapshot. Never null; stays valid (immutable) for as
  /// long as the caller holds the pointer, however many epochs advance.
  std::shared_ptr<const GridAggregates> snapshot() const;

  /// Batched rectangle aggregates against the last sealed snapshot.
  std::vector<RegionAggregate> QueryMany(Span<CellRect> rects) const;

  /// One rectangle aggregate against the last sealed snapshot.
  RegionAggregate Query(const CellRect& rect) const;

  /// Sealed epochs so far (0 = warmup only).
  long long epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// Records accepted over the store's lifetime (sealed + pending).
  long long num_records() const {
    return num_records_.load(std::memory_order_acquire);
  }
  /// Records covered by the last sealed snapshot.
  long long sealed_records() const {
    return sealed_records_.load(std::memory_order_acquire);
  }
  /// Records ingested but not yet sealed.
  long long pending_records() const {
    return pending_records_.load(std::memory_order_acquire);
  }

  int num_shards() const { return num_shards_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

 private:
  /// One accepted batch, tagged with its global sequence number.
  struct PendingBatch {
    long long seq = 0;
    AggregateBatch batch;
  };

  ShardedDeltaStore(const Grid& grid,
                    const ShardedDeltaStoreOptions& options);

  int rows_;
  int cols_;
  int num_shards_;
  int fold_threads_;
  bool force_sharded_fold_;
  /// Durability hook (may be null); see ShardedDeltaStoreOptions::wal.
  WalWriter* wal_;

  /// Writers hold this shared while assigning a sequence number and
  /// appending their batch; Seal holds it exclusive while taking its cut,
  /// so a cut always lands on a consistent batch boundary (every assigned
  /// seq below the observed next_seq_ is fully appended).
  mutable std::shared_mutex ingest_gate_;
  std::atomic<long long> next_seq_{0};
  /// The accepted-but-unsealed batches, roughly seq-ordered (concurrent
  /// writers may append out of order; Seal sorts its capture). A shard's
  /// dirty set is the restriction of these batches to its cell range,
  /// materialized by the fold tasks — appending one seq-tagged batch
  /// beats writer-side slicing (measured allocation-bound) and keeps
  /// Ingest a single move (or copy, for lvalue callers) + lock.
  std::mutex pending_mutex_;
  std::vector<PendingBatch> pending_;

  /// Serializes Seal calls; also the only writer of cell_sums_ (and the
  /// guard CaptureSealedState reads it under).
  mutable std::mutex seal_mutex_;
  /// Cumulative row-major per-cell raw sums over every SEALED record, in
  /// serial-replay order per cell. Mutated only inside Seal (per-shard
  /// pool tasks write disjoint cells).
  std::vector<GridAggregates::PrefixEntry> cell_sums_;
  /// Per-cell epoch of the last fold that touched the cell (-1 = never),
  /// written alongside cell_sums_ under the same disjoint-range
  /// discipline; CaptureDirtySince filters on it.
  std::vector<long long> cell_dirty_epoch_;

  /// Guards snapshot_ publication.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const GridAggregates> snapshot_;

  std::atomic<long long> epoch_{0};
  std::atomic<long long> num_records_{0};
  std::atomic<long long> sealed_records_{0};
  std::atomic<long long> pending_records_{0};

  /// Retained sealed epochs, oldest first (epoch strictly increasing;
  /// seeded with epoch 0 by Build/Restore). Seal appends, RetainEpochs
  /// trims.
  mutable std::mutex history_mutex_;
  std::vector<SealedEpoch> history_;
};

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_SHARDED_DELTA_STORE_H_
