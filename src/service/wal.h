// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Write-ahead log for the serving layer: every batch accepted by
// ShardedDeltaStore::Ingest is appended as one length-prefixed,
// CRC32C-checksummed binary record BEFORE it joins the pending set, and
// every epoch cut appends a seal record, so a crashed process can replay
// the exact accepted-batch sequence (and the exact seal/refine schedule)
// through the normal ingest path and land bit-identical to the
// uninterrupted run.
//
// Segments: one file per epoch, named `wal-<generation>-<epoch>.log`,
// where <epoch> is the epoch the segment's trailing seal record produces.
// Seal() writes its record inside the store's exclusive ingest-gate
// window, so file order equals cut order: every record of epoch e
// precedes e's seal record, which precedes every record of epoch e+1.
// A non-empty seal rotates to the next segment; an empty refine-tagged
// seal logs a mid-segment record (replay re-runs the refine) and an empty
// plain seal logs nothing (it is a no-op on both sides). <generation>
// increments on every Recover: recovery replays the old generation's tail
// through the public ingest path, which re-logs it into the new
// generation, then retires the old files — segment names can never
// collide across recoveries.
//
// Fsync policy — a strict durability ladder:
//   `none`   group-commit buffering: records accumulate in a user-space
//            buffer flushed as one write() at the buffer cap, at every
//            seal, and on Close/destruction; never fsyncs. A process
//            kill (SIGKILL) can lose up to the buffered window of
//            newest records — recovery then lands on an earlier clean
//            prefix and the stream source re-sends the tail.
//   `batch`  write-through: every record reaches the OS before Append
//            returns (a kill loses nothing), fsync at every seal — the
//            power-failure window is the current epoch.
//   `always` write-through plus fsync per append (group commit:
//            concurrent writers that appended before another writer's
//            sync complete without their own). Nothing is ever lost.
//
// Torn tails: a record that is truncated at end-of-file, or whose CRC
// fails with nothing behind it, is a torn tail — dropped when the caller
// allows it (the last segment of a recovery). A CRC failure with more
// bytes behind it is mid-log corruption: a hard DataLoss error.

#ifndef FAIRIDX_SERVICE_WAL_H_
#define FAIRIDX_SERVICE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/sharded_delta_store.h"

namespace fairidx {

/// When WAL appends reach stable storage (see file header).
enum class WalFsync {
  kNone,
  kBatch,
  kAlways,
};

/// Parses "none" | "batch" | "always".
Result<WalFsync> ParseWalFsync(const std::string& name);
const char* WalFsyncName(WalFsync fsync);

/// Append-only file abstraction — the fault-injection seam. Append must
/// write through to the OS (no long-lived user-space buffer), Sync makes
/// previously appended bytes power-failure durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const char* data, size_t size) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Opens `path` for appending (created or truncated) via POSIX I/O.
Result<std::unique_ptr<WritableFile>> OpenWritableFile(
    const std::string& path);

/// Factory seam: tests wrap OpenWritableFile with fault injectors.
using WritableFileFactory =
    std::function<Result<std::unique_ptr<WritableFile>>(
        const std::string& path)>;

struct WalOptions {
  WalFsync fsync = WalFsync::kBatch;
  /// fsync = none only: the group-commit buffer cap — records flush to
  /// the OS as one write() when this many bytes accumulate (and at every
  /// seal / Close). Bounds the SIGKILL loss window.
  size_t buffer_bytes = 256 * 1024;
  /// Null uses OpenWritableFile.
  WritableFileFactory file_factory;
};

/// One on-disk WAL segment, parsed from its filename.
struct WalSegmentInfo {
  long long generation = 0;
  /// The epoch the segment's trailing seal produces.
  long long epoch = 0;
  std::string path;
};

/// The WAL segments under `dir`, sorted by (generation, epoch). Files that
/// do not match the segment naming scheme are ignored.
Result<std::vector<WalSegmentInfo>> ListWalSegments(const std::string& dir);

/// One replayed WAL record.
struct WalRecord {
  enum class Type { kBatch, kSeal };
  Type type = Type::kBatch;
  /// kBatch: the accepted batch and its original sequence number.
  long long seq = 0;
  AggregateBatch batch;
  /// kSeal: the epoch the seal produced (unchanged for an empty cut),
  /// whether the cut captured records (rotated the segment), and the
  /// refine annotation to re-run on replay.
  long long epoch = 0;
  bool captured = false;
  bool refine = false;
  double drift_bound = 0.0;
};

/// Reads every record of one segment. With `allow_torn_tail`, a truncated
/// or CRC-corrupt FINAL record is dropped (its byte count reported via
/// `torn_bytes_dropped` when non-null); without it, any damage is a hard
/// DataLoss error. Mid-log corruption is always a hard error.
Result<std::vector<WalRecord>> ReadWalSegment(
    const std::string& path, bool allow_torn_tail,
    long long* torn_bytes_dropped = nullptr);

/// Appender (see file header). Thread-safe: concurrent AppendBatch calls
/// group-commit — each writer frames and checksums its record in
/// parallel, then one leader writes the whole group with a single
/// write(). AppendSeal is called from inside the store's exclusive cut
/// window, never concurrent with AppendBatch.
class WalWriter {
 public:
  /// Creates `dir` if missing and opens the segment for `next_epoch` (the
  /// epoch the next non-empty seal will produce).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 long long generation,
                                                 long long next_epoch,
                                                 const WalOptions& options);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one accepted batch. Durability per the fsync mode.
  Status AppendBatch(long long seq, const AggregateBatch& batch);

  /// Appends the epoch-cut record and, when the cut captured records,
  /// rotates to the segment for `sealed_epoch + 1`. An empty plain cut
  /// appends nothing. fsync modes `batch` and `always` sync here.
  Status AppendSeal(long long sealed_epoch, bool captured, bool refine,
                    double drift_bound);

  /// Syncs (fsync mode permitting) and closes the current segment. Later
  /// appends fail with FailedPrecondition. Idempotent.
  Status Close();

  const std::string& dir() const { return dir_; }
  long long generation() const { return generation_; }
  /// Total bytes appended across all segments (observability/tests).
  long long bytes_appended() const {
    return bytes_appended_.load(std::memory_order_acquire);
  }

 private:
  WalWriter(std::string dir, long long generation, WalOptions options);

  Status OpenSegmentLocked(long long epoch);
  /// Writes one pre-framed record ([len][crc][payload]) directly under
  /// append_mutex_ — the cold path (seals; the hot path is AppendFramed).
  Status AppendRecordLocked(const std::string& framed);
  /// Group commit for concurrent AppendBatch callers in the write-through
  /// modes (batch/always): enqueues the framed record; the queue-front
  /// writer becomes leader, drains the whole queue, and issues ONE
  /// write() covering every queued record with append_mutex_ released —
  /// writers arriving meanwhile enqueue behind it and ride the next
  /// group instead of convoying on the mutex.
  Status AppendFramed(const std::string& framed);
  /// fsync = none: appends into write_buffer_, flushing at the cap.
  Status AppendBuffered(const std::string& framed);
  /// Writes out (and empties) write_buffer_ with append_mutex_ released
  /// during the write(). No-op when the buffer is empty.
  Status FlushBufferLocked(std::unique_lock<std::mutex>& lock);
  /// Blocks until no group write() is in flight and no writer is queued.
  /// Caller holds `lock` on append_mutex_.
  void WaitForAppendsLocked(std::unique_lock<std::mutex>& lock);

  const std::string dir_;
  const long long generation_;
  const WalOptions options_;

  /// Serializes file appends and rotation. The group leader releases it
  /// during its write() (append_in_flight_ marks that window; rotation
  /// and seals wait it out via WaitForAppendsLocked).
  std::mutex append_mutex_;
  std::condition_variable append_cv_;
  struct PendingAppend;
  std::deque<PendingAppend*> append_queue_;  // Guarded by append_mutex_.
  bool append_in_flight_ = false;            // Guarded by append_mutex_.
  std::unique_ptr<WritableFile> file_;  // Null after Close().
  /// fsync = none: accepted records awaiting their group write()
  /// (guarded by append_mutex_; always empty in the other modes).
  std::string write_buffer_;
  long long current_epoch_ = 0;
  bool closed_ = false;

  /// Group commit for fsync = always: a writer whose bytes another
  /// writer's sync already covered skips its own.
  std::mutex sync_mutex_;
  std::atomic<long long> bytes_appended_{0};
  long long bytes_synced_ = 0;  // Guarded by sync_mutex_.

  Status GroupSync(long long appended_through);
};

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_WAL_H_
