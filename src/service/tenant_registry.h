// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Multi-tenant serving: one process hosts N independent fair-index
// tenants. Each tenant is a full FairIndexService — its own grid shape,
// ShardedDeltaStore, published partition + PointLookupIndex snapshot,
// and (when durability is on) its own WAL/checkpoint namespace under
// `<wal_dir>/<tenant>/` — while all tenants share the global ThreadPool
// and ONE background maintenance thread owned by the registry.
//
// The shared thread round-robins claim-then-act ticks across tenants:
// every wakeup it walks the tenant table from a rotating start slot and
// runs each tenant's own MaintenanceScheduler::TickNow() — the same
// synchronous policy evaluation the single-tenant background thread
// runs, against that tenant's per-tenant MaintenancePolicy (seal
// cadence, drift bound, retention). Because TickNow only uses the
// tenant service's public thread-safe surface, everything the shared
// thread does is exactly what N dedicated per-tenant threads could have
// done; tenants never observe each other except through CPU time. That
// is the isolation contract tests/tenant_registry_test.cc pins: a
// tenant's sealed snapshots, published partitions and recovery output
// are bit-identical to an isolated single-tenant run with the same
// inputs, at any shard count, with the shared scheduler live.
//
// Recovery is per-tenant and fault-isolated: TenantRegistry::Recover
// rebuilds every tenant whose namespace holds a checkpoint via
// FairIndexService::Recover, creates fresh tenants for namespaces that
// do not (a tenant added between restarts), and marks a tenant whose
// recovery FAILS (corrupt WAL/checkpoint) as degraded instead of
// aborting the process — the other tenants come back bit-identically
// and keep serving, and the degraded tenant's error is surfaced
// through statuses(). See docs/operations.md for the on-disk layout
// and the degraded-tenant runbook.

#ifndef FAIRIDX_SERVICE_TENANT_REGISTRY_H_
#define FAIRIDX_SERVICE_TENANT_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "service/fair_index_service.h"

namespace fairidx {

/// One tenant's full configuration: a name (its identity and its
/// durability namespace), a grid, the warmup batch that builds its
/// initial partition, and the per-tenant service options — including
/// the per-tenant MaintenancePolicy the shared scheduler runs for it.
struct TenantSpec {
  /// Unique within the registry; also the on-disk namespace directory,
  /// so only [A-Za-z0-9_-] is accepted (no path separators).
  std::string name;
  Grid grid;
  /// Builds epoch 0 and the initial partition when the tenant is
  /// created fresh (ignored on the recovery path — the checkpoint + WAL
  /// replay rebuild the exact pre-crash state instead).
  AggregateBatch warmup;
  /// Per-tenant algorithm/build/store/refine knobs, the per-tenant
  /// MaintenancePolicy (`maintain`), and per-tenant durability settings
  /// (fsync mode, checkpoint cadence, full-snapshot interval). The
  /// registry owns maintenance and the WAL namespace, so
  /// `auto_maintain` is forced off and `durability.wal_dir` is
  /// rewritten to `<registry wal_dir>/<name>` when the registry has a
  /// durability root (and cleared when it does not).
  FairIndexServiceOptions options;
};

/// Registry-level configuration.
struct TenantRegistryOptions {
  /// Durability root; every tenant logs and checkpoints under its own
  /// `<wal_dir>/<name>/` subdirectory. Empty disables durability for
  /// all tenants.
  std::string wal_dir;
};

enum class TenantState {
  /// The tenant's service is live (created fresh or recovered).
  kServing,
  /// Recovery failed (corrupt WAL/checkpoint); the tenant holds no
  /// service, Ingest/tenant() return FailedPrecondition, and the
  /// shared scheduler skips it. Its on-disk state is left untouched
  /// for offline repair.
  kDegraded,
};

/// One tenant's externally visible condition.
struct TenantStatus {
  std::string name;
  TenantState state = TenantState::kServing;
  /// Why the tenant is degraded (Ok while serving).
  Status error = Status::Ok();
  /// True when this tenant was rebuilt from existing WAL/checkpoint
  /// state (vs. created fresh from its warmup batch).
  bool recovered = false;
};

/// Hosts N independent FairIndexService tenants behind one maintenance
/// thread. All public methods are thread-safe; the tenant table itself
/// is immutable after Create/Recover (per-tenant mutation goes through
/// each tenant's own thread-safe service).
class TenantRegistry {
 public:
  /// Creates every tenant fresh from its warmup batch. Fails on
  /// duplicate/invalid names, an empty spec list, or any tenant
  /// creation failure — including a durability namespace that already
  /// holds WAL/checkpoint state (use Recover for restarts, exactly like
  /// FairIndexService::Create vs Recover).
  static Result<std::unique_ptr<TenantRegistry>> Create(
      std::vector<TenantSpec> specs, const TenantRegistryOptions& options);

  /// Per-tenant recover-or-create: a tenant whose namespace holds a
  /// checkpoint is rebuilt bit-identically via FairIndexService::
  /// Recover; a tenant with no durable state (or no durability at all)
  /// is created fresh from its warmup. A tenant whose RECOVERY fails is
  /// marked kDegraded — its error is surfaced via statuses(), its disk
  /// state is left for repair, and the other tenants are unaffected.
  /// Only when every tenant fails does Recover return the first error.
  static Result<std::unique_ptr<TenantRegistry>> Recover(
      std::vector<TenantSpec> specs, const TenantRegistryOptions& options);

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Stops the shared maintenance thread before tearing down tenants.
  ~TenantRegistry();

  /// Appends one batch to `tenant`'s store and wakes the shared
  /// scheduler (record-count cadences react promptly, exactly like the
  /// single-tenant ingest notification). FailedPrecondition for a
  /// degraded tenant, NotFound for an unknown one.
  Result<long long> Ingest(const std::string& tenant, AggregateBatch batch);

  /// The tenant's service, for reads and direct maintenance
  /// (Lookup/LookupMany/Query*/Seal/MaybeRefine/...). Stable for the
  /// registry's lifetime. FailedPrecondition for a degraded tenant,
  /// NotFound for an unknown one.
  Result<FairIndexService*> tenant(const std::string& name) const;

  /// Every tenant's condition, in spec order.
  std::vector<TenantStatus> statuses() const;

  size_t num_tenants() const { return tenants_.size(); }
  /// Tenants currently serving (num_tenants() minus degraded ones).
  size_t num_serving() const;

  /// Starts the ONE shared maintenance thread (validates every serving
  /// tenant's policy the way FairIndexService::StartMaintenance does:
  /// at least one cadence enabled, positive poll interval). Fails when
  /// already running.
  Status StartMaintenance();

  /// Stops and joins the shared thread. Idempotent.
  void StopMaintenance();

  bool maintenance_running() const;

  /// One synchronous round-robin maintenance pass: runs TickNow() on
  /// every serving tenant's scheduler, starting from a rotating slot so
  /// no tenant is permanently first in line. What the shared thread
  /// runs per wakeup; public so drivers and tests can tick
  /// deterministically (the single-tenant TickNow contract, extended
  /// across the fleet). Returns true when any tenant's pass ran.
  bool TickMaintenanceNow();

  /// Maintenance counters for one tenant (zeros for unknown/degraded).
  MaintenanceStats maintenance_stats(const std::string& tenant) const;

 private:
  struct Tenant {
    std::string name;
    /// Null while degraded.
    std::unique_ptr<FairIndexService> service;
    /// The per-tenant policy evaluator the shared thread ticks. Never
    /// Start()ed — the registry thread IS its thread. Null while
    /// degraded.
    std::unique_ptr<MaintenanceScheduler> scheduler;
    Status error = Status::Ok();
    bool recovered = false;
  };

  TenantRegistry() = default;

  /// Shared construction: validates names, rewrites per-tenant
  /// durability namespaces, then creates or recovers each tenant.
  /// `allow_recover` selects the Recover path semantics.
  static Result<std::unique_ptr<TenantRegistry>> Build(
      std::vector<TenantSpec> specs, const TenantRegistryOptions& options,
      bool allow_recover);

  const Tenant* Find(const std::string& name) const;

  void MaintenanceRun();

  /// Spec order; immutable after Build (pointers handed out by
  /// tenant() stay valid for the registry's lifetime).
  std::vector<std::unique_ptr<Tenant>> tenants_;

  /// Rotating start slot for the round-robin tick.
  std::atomic<size_t> next_tick_start_{0};

  /// Shared maintenance thread state (same shape as the single-tenant
  /// scheduler's: condvar wakeups from Ingest, poll fallback at the
  /// minimum serving-tenant poll interval).
  mutable std::mutex maint_mutex_;
  std::condition_variable maint_wakeup_;
  bool maint_stop_ = false;
  bool maint_notified_ = false;
  bool maint_running_ = false;
  double maint_poll_seconds_ = 0.005;
  std::thread maint_thread_;
};

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_TENANT_REGISTRY_H_
