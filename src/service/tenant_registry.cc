#include "service/tenant_registry.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "service/checkpoint.h"

namespace fairidx {
namespace {

// Tenant names double as on-disk directory names, so the accepted
// alphabet must not allow path traversal or separators.
Status ValidateTenantName(const std::string& name) {
  if (name.empty()) {
    return InvalidArgumentError("TenantRegistry: empty tenant name");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      return InvalidArgumentError(
          "TenantRegistry: tenant name '" + name +
          "' must match [A-Za-z0-9_-]+ (it names a directory)");
    }
  }
  return Status::Ok();
}

Status ValidateTenantPolicy(const std::string& name,
                            const MaintenancePolicy& policy) {
  if (policy.seal_records <= 0 && policy.seal_interval_seconds <= 0.0) {
    return InvalidArgumentError(
        "TenantRegistry: tenant '" + name +
        "' maintenance policy would never act (enable seal_records or "
        "seal_interval_seconds)");
  }
  if (!(policy.poll_interval_seconds > 0.0)) {
    return InvalidArgumentError("TenantRegistry: tenant '" + name +
                                "' poll_interval_seconds must be > 0");
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<TenantRegistry>> TenantRegistry::Create(
    std::vector<TenantSpec> specs, const TenantRegistryOptions& options) {
  return Build(std::move(specs), options, /*allow_recover=*/false);
}

Result<std::unique_ptr<TenantRegistry>> TenantRegistry::Recover(
    std::vector<TenantSpec> specs, const TenantRegistryOptions& options) {
  return Build(std::move(specs), options, /*allow_recover=*/true);
}

Result<std::unique_ptr<TenantRegistry>> TenantRegistry::Build(
    std::vector<TenantSpec> specs, const TenantRegistryOptions& options,
    bool allow_recover) {
  if (specs.empty()) {
    return InvalidArgumentError("TenantRegistry: no tenants");
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    FAIRIDX_RETURN_IF_ERROR(ValidateTenantName(specs[i].name));
    for (size_t j = 0; j < i; ++j) {
      if (specs[j].name == specs[i].name) {
        return InvalidArgumentError("TenantRegistry: duplicate tenant '" +
                                    specs[i].name + "'");
      }
    }
  }

  std::unique_ptr<TenantRegistry> registry(new TenantRegistry());
  Status first_error = Status::Ok();
  for (TenantSpec& spec : specs) {
    // The registry owns maintenance (one shared thread) and the WAL
    // namespace; per-tenant options must not fight either.
    spec.options.auto_maintain = false;
    spec.options.durability.wal_dir =
        options.wal_dir.empty() ? std::string()
                                : options.wal_dir + "/" + spec.name;

    auto tenant = std::make_unique<Tenant>();
    tenant->name = spec.name;

    // Recover-or-create: a namespace that already holds a checkpoint is
    // a previous run's state — rebuild it; anything else (no durability,
    // or a tenant added since the last restart) starts fresh.
    bool has_state = false;
    if (allow_recover && !spec.options.durability.wal_dir.empty()) {
      auto checkpoints = ListCheckpoints(spec.options.durability.wal_dir);
      has_state = checkpoints.ok() && !checkpoints->empty();
    }
    Result<std::unique_ptr<FairIndexService>> service =
        has_state
            ? FairIndexService::Recover(spec.grid, spec.options)
            : FairIndexService::Create(spec.grid, spec.warmup, spec.options);
    if (service.ok()) {
      tenant->service = std::move(*service);
      tenant->scheduler = std::make_unique<MaintenanceScheduler>(
          tenant->service.get(), spec.options.maintain);
      tenant->recovered = has_state;
    } else if (allow_recover) {
      // Fault isolation: one corrupt tenant must not take down the
      // fleet. Surface the error, leave the disk state for repair.
      tenant->error = service.status();
      if (first_error.ok()) first_error = service.status();
    } else {
      return service.status();
    }
    registry->tenants_.push_back(std::move(tenant));
  }
  if (registry->num_serving() == 0) {
    // Nothing recovered and nothing created: an empty registry serves
    // no one, so propagate the cause instead of a zombie process.
    return first_error;
  }
  return registry;
}

TenantRegistry::~TenantRegistry() { StopMaintenance(); }

const TenantRegistry::Tenant* TenantRegistry::Find(
    const std::string& name) const {
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    if (tenant->name == name) return tenant.get();
  }
  return nullptr;
}

Result<long long> TenantRegistry::Ingest(const std::string& tenant,
                                         AggregateBatch batch) {
  const Tenant* t = Find(tenant);
  if (t == nullptr) {
    return NotFoundError("TenantRegistry: unknown tenant '" + tenant + "'");
  }
  if (t->service == nullptr) {
    return FailedPreconditionError("TenantRegistry: tenant '" + tenant +
                                   "' is degraded: " + t->error.ToString());
  }
  Result<long long> seq = t->service->Ingest(std::move(batch));
  if (seq.ok()) {
    std::lock_guard<std::mutex> lock(maint_mutex_);
    if (maint_running_) {
      maint_notified_ = true;
      maint_wakeup_.notify_one();
    }
  }
  return seq;
}

Result<FairIndexService*> TenantRegistry::tenant(
    const std::string& name) const {
  const Tenant* t = Find(name);
  if (t == nullptr) {
    return NotFoundError("TenantRegistry: unknown tenant '" + name + "'");
  }
  if (t->service == nullptr) {
    return FailedPreconditionError("TenantRegistry: tenant '" + name +
                                   "' is degraded: " + t->error.ToString());
  }
  return t->service.get();
}

std::vector<TenantStatus> TenantRegistry::statuses() const {
  std::vector<TenantStatus> out;
  out.reserve(tenants_.size());
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    TenantStatus status;
    status.name = tenant->name;
    status.state = tenant->service != nullptr ? TenantState::kServing
                                              : TenantState::kDegraded;
    status.error = tenant->error;
    status.recovered = tenant->recovered;
    out.push_back(std::move(status));
  }
  return out;
}

size_t TenantRegistry::num_serving() const {
  size_t serving = 0;
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    if (tenant->service != nullptr) ++serving;
  }
  return serving;
}

Status TenantRegistry::StartMaintenance() {
  double poll = 0.0;
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    if (tenant->service == nullptr) continue;
    const MaintenancePolicy& policy = tenant->scheduler->policy();
    FAIRIDX_RETURN_IF_ERROR(ValidateTenantPolicy(tenant->name, policy));
    poll = poll == 0.0 ? policy.poll_interval_seconds
                       : std::min(poll, policy.poll_interval_seconds);
  }
  std::lock_guard<std::mutex> lock(maint_mutex_);
  if (maint_running_) {
    return FailedPreconditionError(
        "TenantRegistry: maintenance is already running");
  }
  maint_stop_ = false;
  maint_notified_ = false;
  maint_running_ = true;
  // The shared thread polls at the most demanding tenant's cadence, so
  // every tenant's wall-clock policy resolves at least as often as its
  // own dedicated thread would have.
  maint_poll_seconds_ = poll > 0.0 ? poll : 0.005;
  maint_thread_ = std::thread([this] { MaintenanceRun(); });
  return Status::Ok();
}

void TenantRegistry::StopMaintenance() {
  {
    std::lock_guard<std::mutex> lock(maint_mutex_);
    if (!maint_running_) return;
    maint_stop_ = true;
    maint_wakeup_.notify_one();
  }
  maint_thread_.join();
  std::lock_guard<std::mutex> lock(maint_mutex_);
  maint_running_ = false;
}

bool TenantRegistry::maintenance_running() const {
  std::lock_guard<std::mutex> lock(maint_mutex_);
  return maint_running_;
}

bool TenantRegistry::TickMaintenanceNow() {
  const size_t n = tenants_.size();
  // Claim-then-act round robin: every pass starts one slot later, so
  // over any window of passes each tenant is first in line equally
  // often and a slow tenant's refine cannot starve the others of their
  // turn position.
  const size_t start =
      next_tick_start_.fetch_add(1, std::memory_order_relaxed) % n;
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    Tenant& tenant = *tenants_[(start + i) % n];
    if (tenant.service == nullptr) continue;
    if (tenant.scheduler->TickNow()) any = true;
  }
  return any;
}

MaintenanceStats TenantRegistry::maintenance_stats(
    const std::string& tenant) const {
  const Tenant* t = Find(tenant);
  if (t == nullptr || t->scheduler == nullptr) return MaintenanceStats{};
  return t->scheduler->stats();
}

void TenantRegistry::MaintenanceRun() {
  std::unique_lock<std::mutex> lock(maint_mutex_);
  while (!maint_stop_) {
    maint_wakeup_.wait_for(
        lock, std::chrono::duration<double>(maint_poll_seconds_),
        [this] { return maint_stop_ || maint_notified_; });
    maint_notified_ = false;
    if (maint_stop_) break;
    lock.unlock();
    TickMaintenanceNow();
    lock.lock();
  }
}

}  // namespace fairidx
