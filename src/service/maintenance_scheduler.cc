#include "service/maintenance_scheduler.h"

#include <utility>

#include "service/fair_index_service.h"

namespace fairidx {

namespace {

std::chrono::duration<double> Seconds(double seconds) {
  return std::chrono::duration<double>(seconds);
}

}  // namespace

MaintenanceScheduler::MaintenanceScheduler(FairIndexService* service,
                                           MaintenancePolicy policy)
    : service_(service),
      policy_(policy),
      last_pass_(std::chrono::steady_clock::now()) {}

MaintenanceScheduler::~MaintenanceScheduler() { Stop(); }

void MaintenanceScheduler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_ = false;
  notified_ = false;
  running_ = true;
  thread_ = std::thread(&MaintenanceScheduler::Run, this);
}

void MaintenanceScheduler::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    running_ = false;
    worker = std::move(thread_);
    wakeup_.notify_all();
  }
  if (worker.joinable()) worker.join();
}

bool MaintenanceScheduler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void MaintenanceScheduler::NotifyIngest() {
  std::lock_guard<std::mutex> lock(mutex_);
  notified_ = true;
  wakeup_.notify_all();
}

bool MaintenanceScheduler::Due(
    std::chrono::steady_clock::time_point now) const {
  const long long pending = service_->store().pending_records();
  if (pending <= 0) return false;  // Nothing to seal: never act.
  if (policy_.seal_records > 0 && pending >= policy_.seal_records) {
    return true;
  }
  return policy_.seal_interval_seconds > 0.0 &&
         now - last_pass_ >= Seconds(policy_.seal_interval_seconds);
}

bool MaintenanceScheduler::TickNow() {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.ticks;
    if (!Due(now)) return false;
    // Claim the pass before acting so a concurrent ticker does not
    // double-fire the clock cadence for the same interval.
    last_pass_ = now;
  }
  // Act outside the state lock: the service serializes maintenance
  // itself, and stats() readers should not block on an O(UV) fold.
  if (policy_.drift_bound >= 0.0) {
    KdRefineOptions refine_options;
    refine_options.drift_bound = policy_.drift_bound;
    const Result<ServiceRefineResult> refined =
        service_->MaybeRefine(refine_options);
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.passes;
    ++stats_.refines;
    if (!refined.ok()) {
      ++stats_.errors;
    } else if (refined->stats.changed) {
      ++stats_.published;
      stats_.resplits += refined->stats.subtrees_rebuilt;
      if (refined->stats.patched_in_place || refined->stats.patched_splice) {
        ++stats_.published_patched;
      } else {
        ++stats_.published_fallback;
      }
    }
  } else {
    const Result<long long> sealed = service_->Seal();
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.passes;
    if (!sealed.ok()) ++stats_.errors;
  }
  if (policy_.retain_epochs > 0) {
    // Retention rides the maintenance cadence: each pass seals at most one
    // epoch, so trimming here bounds the history at retain_epochs plus
    // whatever readers still pin.
    const int dropped = service_->ApplyRetention(policy_.retain_epochs);
    if (dropped > 0) {
      std::lock_guard<std::mutex> lock(state_mutex_);
      stats_.epochs_retired += dropped;
    }
  }
  return true;
}

MaintenanceStats MaintenanceScheduler::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

void MaintenanceScheduler::Run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    lock.unlock();
    TickNow();
    lock.lock();
    if (stop_) break;
    wakeup_.wait_for(lock, Seconds(policy_.poll_interval_seconds),
                     [this] { return stop_ || notified_; });
    notified_ = false;
  }
}

}  // namespace fairidx
