// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Service-owned background maintenance: the piece that turns
// FairIndexService from "caller must remember to MaybeRefine" into a
// hands-off serving system. A MaintenancePolicy names the cadence (seal
// once N records are pending, or at least every T seconds while anything
// is pending) and the action (drift-bounded MaybeRefine, or a plain Seal
// when drift_bound < 0); a MaintenanceScheduler runs that policy on its
// own thread against a service.
//
// The scheduler only uses the service's public thread-safe surface —
// store() counters to decide, MaybeRefine()/Seal() to act — so everything
// it does is exactly what a caller-driven maintenance loop could have
// done: epochs still seal at consistent batch boundaries, refines still
// key off the epoch they seal, and readers keep serving the previously
// published partition throughout. Ingest wakes the scheduler
// (FairIndexService::Ingest calls NotifyIngest) so record-count cadences
// react promptly; wall-clock cadences resolve at poll_interval_seconds.

#ifndef FAIRIDX_SERVICE_MAINTENANCE_SCHEDULER_H_
#define FAIRIDX_SERVICE_MAINTENANCE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/result.h"

namespace fairidx {

class FairIndexService;

/// When and how background maintenance acts. At least one cadence must be
/// enabled (StartMaintenance validates).
struct MaintenancePolicy {
  /// Act once this many records are pending (<= 0 disables the
  /// record-count cadence).
  long long seal_records = 1;
  /// Act at least this often (wall clock) while records are pending
  /// (<= 0 disables the clock cadence).
  double seal_interval_seconds = 0.0;
  /// MaybeRefine drift bound for each pass; < 0 seals without refining
  /// (the published partition stays fixed).
  double drift_bound = 0.02;
  /// Scheduler wakeup cadence — the resolution of the clock cadence and
  /// the fallback poll when no ingest notification arrives.
  double poll_interval_seconds = 0.005;
  /// After each maintenance pass, drop sealed-snapshot history beyond the
  /// newest this many epochs (reader-pinned snapshots are always kept;
  /// see ShardedDeltaStore::RetainEpochs). <= 0 disables retention — the
  /// history then grows by one entry per capturing seal for the life of
  /// the stream.
  int retain_epochs = 0;
};

/// Counters of everything a scheduler did (all monotone; readable while
/// the thread runs).
struct MaintenanceStats {
  /// Policy evaluations (wakeups that checked the cadences).
  long long ticks = 0;
  /// Maintenance actions taken (seal-only passes + refine passes).
  long long passes = 0;
  /// Passes that ran MaybeRefine (drift_bound >= 0).
  long long refines = 0;
  /// Refine passes that re-split at least one subtree and published a new
  /// partition. Zero-drift passes never publish.
  long long published = 0;
  /// Published passes whose partition went out via an O(changed area)
  /// cell-map patch (in-place or splice-path; see KdRefineStats).
  long long published_patched = 0;
  /// Published passes that fell back to a full O(grid) cell-map rebuild.
  long long published_fallback = 0;
  /// Subtree re-splits across all published passes.
  long long resplits = 0;
  /// Sealed-snapshot history entries dropped by retention (policy
  /// retain_epochs > 0).
  long long epochs_retired = 0;
  /// Passes that failed (the service call returned an error).
  long long errors = 0;
};

/// Runs one MaintenancePolicy against one service on a background thread.
/// Create/Start via FairIndexService::StartMaintenance (which validates
/// the policy and wires ingest notifications); Stop() joins and is
/// idempotent. The referenced service must outlive the scheduler —
/// FairIndexService guarantees this by stopping maintenance in its
/// destructor before any member is torn down.
class MaintenanceScheduler {
 public:
  MaintenanceScheduler(FairIndexService* service, MaintenancePolicy policy);
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  /// Spawns the maintenance thread (no-op when already running).
  void Start();

  /// Signals the thread and joins it. Idempotent; safe without Start().
  void Stop();

  bool running() const;

  /// Wakes the thread so a record-count cadence is evaluated now instead
  /// of at the next poll.
  void NotifyIngest();

  /// One synchronous policy evaluation — what the thread runs per wakeup.
  /// Public so drivers and tests can tick deterministically; thread-safe
  /// against the background thread (the service serializes maintenance).
  /// Returns true when a maintenance pass ran.
  bool TickNow();

  MaintenanceStats stats() const;
  const MaintenancePolicy& policy() const { return policy_; }

 private:
  void Run();
  /// True when either cadence is due given the pending-record count.
  bool Due(std::chrono::steady_clock::time_point now) const;

  FairIndexService* service_;
  const MaintenancePolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable wakeup_;
  bool stop_ = false;
  bool notified_ = false;
  bool running_ = false;
  std::thread thread_;

  /// Guards last_pass_ and stats_ (ticks may come from the thread and
  /// from TickNow callers concurrently).
  mutable std::mutex state_mutex_;
  std::chrono::steady_clock::time_point last_pass_;
  MaintenanceStats stats_;
};

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_MAINTENANCE_SCHEDULER_H_
