#include "service/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/binary_io.h"

namespace fairidx {
namespace {

constexpr uint32_t kWalMagic = 0x4658574Cu;  // "FXWL"
constexpr uint32_t kWalVersion = 1;
// Segment header: magic u32, version u32, generation i64, epoch i64.
constexpr size_t kSegmentHeaderSize = 4 + 4 + 8 + 8;

constexpr uint8_t kBatchRecord = 1;
constexpr uint8_t kSealRecord = 2;
constexpr uint8_t kSealCapturedFlag = 1u << 0;
constexpr uint8_t kSealRefineFlag = 1u << 1;

std::string SegmentFileName(long long generation, long long epoch) {
  return "wal-" + std::to_string(generation) + "-" + std::to_string(epoch) +
         ".log";
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

// POSIX append-only file. Append issues the write() immediately (full
// write, retrying on short writes), so a killed process loses nothing
// that Append returned Ok for; Sync adds the power-failure guarantee.
class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t size) override {
    while (size > 0) {
      const ssize_t written = ::write(fd_, data, size);
      if (written < 0) {
        if (errno == EINTR) continue;
        return InternalError(std::string("wal write failed: ") +
                             std::strerror(errno));
      }
      data += written;
      size -= static_cast<size_t>(written);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return InternalError(std::string("wal fsync failed: ") +
                           std::strerror(errno));
    }
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) {
      return InternalError(std::string("wal close failed: ") +
                           std::strerror(errno));
    }
    return Status::Ok();
  }

 private:
  int fd_;
};

// Record framing is [u32 len][u32 crc][payload]. The payload is
// serialized straight after an 8-byte placeholder in the SAME buffer,
// then the prefix is patched in place — no second serialize-then-copy
// pass, and everything (including the CRC) runs OUTSIDE the append lock
// so concurrent writers frame in parallel.
std::string FinishFrame(BinaryWriter out) {
  const uint32_t length = static_cast<uint32_t>(out.size() - 8);
  out.PatchU32(0, length);
  out.PatchU32(4, Crc32c(out.buffer().data() + 8, length));
  return out.Release();
}

std::string FrameBatchRecord(long long seq, const AggregateBatch& batch) {
  const size_t n = batch.size();
  BinaryWriter out;
  out.Reserve(8 + 14 + n * 13 + batch.residuals.size() * 8);
  out.PutU32(0);  // Length placeholder, patched by FinishFrame.
  out.PutU32(0);  // CRC placeholder.
  out.PutU8(kBatchRecord);
  out.PutI64(seq);
  out.PutU32(static_cast<uint32_t>(n));
  out.PutU8(batch.residuals.empty() ? 0 : 1);
  out.PutI32Array(batch.cell_ids.data(), batch.cell_ids.size());
  std::string labels(batch.labels.size(), '\0');
  for (size_t i = 0; i < batch.labels.size(); ++i) {
    labels[i] = static_cast<char>(static_cast<uint8_t>(batch.labels[i]));
  }
  out.PutBytes(labels.data(), labels.size());
  out.PutDoubleArray(batch.scores.data(), batch.scores.size());
  out.PutDoubleArray(batch.residuals.data(), batch.residuals.size());
  return FinishFrame(std::move(out));
}

std::string FrameSealRecord(long long epoch, bool captured, bool refine,
                            double drift_bound) {
  BinaryWriter out;
  out.PutU32(0);
  out.PutU32(0);
  out.PutU8(kSealRecord);
  out.PutI64(epoch);
  uint8_t flags = 0;
  if (captured) flags |= kSealCapturedFlag;
  if (refine) flags |= kSealRefineFlag;
  out.PutU8(flags);
  out.PutDouble(drift_bound);
  return FinishFrame(std::move(out));
}

Result<WalRecord> ParseRecordPayload(const std::string& payload,
                                     const std::string& path) {
  BinaryReader in(payload);
  WalRecord record;
  FAIRIDX_ASSIGN_OR_RETURN(const uint8_t type, in.ReadU8());
  if (type == kBatchRecord) {
    record.type = WalRecord::Type::kBatch;
    FAIRIDX_ASSIGN_OR_RETURN(record.seq, in.ReadI64());
    FAIRIDX_ASSIGN_OR_RETURN(const uint32_t n, in.ReadU32());
    FAIRIDX_ASSIGN_OR_RETURN(const uint8_t has_residuals, in.ReadU8());
    record.batch.cell_ids.reserve(n);
    record.batch.labels.reserve(n);
    record.batch.scores.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      FAIRIDX_ASSIGN_OR_RETURN(const int32_t cell, in.ReadI32());
      record.batch.cell_ids.push_back(cell);
    }
    for (uint32_t i = 0; i < n; ++i) {
      FAIRIDX_ASSIGN_OR_RETURN(const uint8_t label, in.ReadU8());
      record.batch.labels.push_back(label);
    }
    for (uint32_t i = 0; i < n; ++i) {
      FAIRIDX_ASSIGN_OR_RETURN(const double score, in.ReadDouble());
      record.batch.scores.push_back(score);
    }
    if (has_residuals) {
      record.batch.residuals.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        FAIRIDX_ASSIGN_OR_RETURN(const double residual, in.ReadDouble());
        record.batch.residuals.push_back(residual);
      }
    }
  } else if (type == kSealRecord) {
    record.type = WalRecord::Type::kSeal;
    FAIRIDX_ASSIGN_OR_RETURN(record.epoch, in.ReadI64());
    FAIRIDX_ASSIGN_OR_RETURN(const uint8_t flags, in.ReadU8());
    record.captured = (flags & kSealCapturedFlag) != 0;
    record.refine = (flags & kSealRefineFlag) != 0;
    FAIRIDX_ASSIGN_OR_RETURN(record.drift_bound, in.ReadDouble());
  } else {
    return DataLossError("wal segment " + path +
                         ": unknown record type " + std::to_string(type));
  }
  if (in.remaining() != 0) {
    return DataLossError("wal segment " + path +
                         ": trailing bytes inside a record");
  }
  return record;
}

}  // namespace

Result<WalFsync> ParseWalFsync(const std::string& name) {
  if (name == "none") return WalFsync::kNone;
  if (name == "batch") return WalFsync::kBatch;
  if (name == "always") return WalFsync::kAlways;
  return InvalidArgumentError("unknown fsync mode '" + name +
                              "' (expected none|batch|always)");
}

const char* WalFsyncName(WalFsync fsync) {
  switch (fsync) {
    case WalFsync::kNone:
      return "none";
    case WalFsync::kBatch:
      return "batch";
    case WalFsync::kAlways:
      return "always";
  }
  return "unknown";
}

Result<std::unique_ptr<WritableFile>> OpenWritableFile(
    const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) {
    return InternalError("cannot open '" + path +
                         "': " + std::strerror(errno));
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd));
}

Result<std::vector<WalSegmentInfo>> ListWalSegments(const std::string& dir) {
  std::error_code ec;
  std::vector<WalSegmentInfo> segments;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return NotFoundError("cannot list wal dir '" + dir +
                         "': " + ec.message());
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    long long generation = 0;
    long long epoch = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "wal-%lld-%lld.log%n", &generation,
                    &epoch, &consumed) == 2 &&
        consumed == static_cast<int>(name.size())) {
      segments.push_back(
          WalSegmentInfo{generation, epoch, entry.path().string()});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.generation != b.generation
                         ? a.generation < b.generation
                         : a.epoch < b.epoch;
            });
  return segments;
}

Result<std::vector<WalRecord>> ReadWalSegment(const std::string& path,
                                              bool allow_torn_tail,
                                              long long* torn_bytes_dropped) {
  if (torn_bytes_dropped != nullptr) *torn_bytes_dropped = 0;
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError("cannot open wal segment '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();

  const auto torn = [&](size_t offset) -> Status {
    if (!allow_torn_tail) {
      return DataLossError("wal segment " + path +
                           ": truncated record at offset " +
                           std::to_string(offset));
    }
    if (torn_bytes_dropped != nullptr) {
      *torn_bytes_dropped = static_cast<long long>(data.size() - offset);
    }
    return Status::Ok();
  };

  std::vector<WalRecord> records;
  if (data.size() < kSegmentHeaderSize) {
    FAIRIDX_RETURN_IF_ERROR(torn(0));
    return records;
  }
  BinaryReader header(data.data(), kSegmentHeaderSize);
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t magic, header.ReadU32());
  FAIRIDX_ASSIGN_OR_RETURN(const uint32_t version, header.ReadU32());
  if (magic != kWalMagic || version != kWalVersion) {
    return DataLossError("wal segment " + path +
                         ": bad magic or version in header");
  }

  size_t offset = kSegmentHeaderSize;
  while (offset < data.size()) {
    if (data.size() - offset < 8) {
      FAIRIDX_RETURN_IF_ERROR(torn(offset));
      return records;
    }
    BinaryReader prefix(data.data() + offset, 8);
    FAIRIDX_ASSIGN_OR_RETURN(const uint32_t length, prefix.ReadU32());
    FAIRIDX_ASSIGN_OR_RETURN(const uint32_t expected_crc, prefix.ReadU32());
    if (data.size() - offset - 8 < length) {
      FAIRIDX_RETURN_IF_ERROR(torn(offset));
      return records;
    }
    const char* payload = data.data() + offset + 8;
    const uint32_t actual_crc = Crc32c(payload, length);
    if (actual_crc != expected_crc) {
      const bool is_final_record = offset + 8 + length == data.size();
      if (is_final_record) {
        FAIRIDX_RETURN_IF_ERROR(torn(offset));
        return records;
      }
      return DataLossError("wal segment " + path +
                           ": CRC mismatch mid-log at offset " +
                           std::to_string(offset));
    }
    FAIRIDX_ASSIGN_OR_RETURN(
        WalRecord record,
        ParseRecordPayload(std::string(payload, length), path));
    records.push_back(std::move(record));
    offset += 8 + length;
  }
  return records;
}

WalWriter::WalWriter(std::string dir, long long generation,
                     WalOptions options)
    : dir_(std::move(dir)),
      generation_(generation),
      options_(std::move(options)) {}

WalWriter::~WalWriter() {
  // Destruction is a clean shutdown, not a crash: push any buffered
  // records to the OS (the recovery suite's "crash" is destroying the
  // service, and it relies on every accepted record being in the file),
  // then close the descriptor. No fsync — the power-failure window is
  // the fsync mode's business, not the destructor's.
  std::unique_lock<std::mutex> append_lock(append_mutex_);
  WaitForAppendsLocked(append_lock);
  std::lock_guard<std::mutex> sync_lock(sync_mutex_);
  if (file_ != nullptr && !write_buffer_.empty()) {
    (void)file_->Append(write_buffer_.data(), write_buffer_.size());
    write_buffer_.clear();
  }
  if (file_ != nullptr) (void)file_->Close();
  file_ = nullptr;
  closed_ = true;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   long long generation,
                                                   long long next_epoch,
                                                   const WalOptions& options) {
  if (generation < 1) {
    return InvalidArgumentError("WalWriter: generation must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create wal dir '" + dir +
                         "': " + ec.message());
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(dir, generation, options));
  std::lock_guard<std::mutex> append_lock(writer->append_mutex_);
  std::lock_guard<std::mutex> sync_lock(writer->sync_mutex_);
  FAIRIDX_RETURN_IF_ERROR(writer->OpenSegmentLocked(next_epoch));
  return writer;
}

Status WalWriter::OpenSegmentLocked(long long epoch) {
  const std::string path =
      JoinPath(dir_, SegmentFileName(generation_, epoch));
  Result<std::unique_ptr<WritableFile>> file =
      options_.file_factory ? options_.file_factory(path)
                            : OpenWritableFile(path);
  FAIRIDX_RETURN_IF_ERROR(file.status());
  BinaryWriter header;
  header.PutU32(kWalMagic);
  header.PutU32(kWalVersion);
  header.PutI64(generation_);
  header.PutI64(epoch);
  FAIRIDX_RETURN_IF_ERROR(
      (*file)->Append(header.buffer().data(), header.buffer().size()));
  file_ = std::move(*file);
  current_epoch_ = epoch;
  bytes_appended_.fetch_add(static_cast<long long>(header.size()),
                            std::memory_order_acq_rel);
  return Status::Ok();
}

Status WalWriter::AppendRecordLocked(const std::string& framed) {
  if (closed_ || file_ == nullptr) {
    return FailedPreconditionError("WalWriter: log is closed");
  }
  FAIRIDX_RETURN_IF_ERROR(file_->Append(framed.data(), framed.size()));
  bytes_appended_.fetch_add(static_cast<long long>(framed.size()),
                            std::memory_order_acq_rel);
  return Status::Ok();
}

/// One queued writer. Stack-allocated in its own AppendFramed frame; the
/// leader fills `status` and flips `done` before notifying, so the frame
/// outlives every access.
struct WalWriter::PendingAppend {
  const std::string* framed = nullptr;
  Status status;
  bool done = false;
};

void WalWriter::WaitForAppendsLocked(std::unique_lock<std::mutex>& lock) {
  while (append_in_flight_ || !append_queue_.empty()) {
    append_cv_.wait(lock);
  }
}

Status WalWriter::AppendFramed(const std::string& framed) {
  std::unique_lock<std::mutex> lock(append_mutex_);
  PendingAppend self;
  self.framed = &framed;
  append_queue_.push_back(&self);
  while (!self.done &&
         (append_in_flight_ || append_queue_.front() != &self)) {
    append_cv_.wait(lock);
  }
  if (self.done) return self.status;  // A leader wrote our record for us.

  // Leader: claim everything queued so far; later arrivals queue behind
  // and form the next group.
  std::vector<PendingAppend*> group(append_queue_.begin(),
                                    append_queue_.end());
  append_queue_.clear();
  Status status;
  if (closed_ || file_ == nullptr) {
    status = FailedPreconditionError("WalWriter: log is closed");
  } else {
    // Single-record groups write in place; larger groups concatenate so
    // the whole group lands in one write() (and one torn-tail boundary
    // per record is preserved — records stay self-delimiting).
    std::string combined;
    const std::string* data = group.front()->framed;
    if (group.size() > 1) {
      size_t total = 0;
      for (const PendingAppend* entry : group) total += entry->framed->size();
      combined.reserve(total);
      for (const PendingAppend* entry : group) combined += *entry->framed;
      data = &combined;
    }
    WritableFile* file = file_.get();
    append_in_flight_ = true;
    // Release the lock for the write(): rotation/Close cannot swap file_
    // underneath us — they wait for append_in_flight_ to clear.
    lock.unlock();
    status = file->Append(data->data(), data->size());
    lock.lock();
    append_in_flight_ = false;
    if (status.ok()) {
      bytes_appended_.fetch_add(static_cast<long long>(data->size()),
                                std::memory_order_acq_rel);
    }
  }
  for (PendingAppend* entry : group) {
    entry->status = status;
    entry->done = true;
  }
  append_cv_.notify_all();
  return status;
}

Status WalWriter::FlushBufferLocked(std::unique_lock<std::mutex>& lock) {
  // An in-flight flush may be writing the bytes we came for; wait it out
  // and re-check (the buffer is usually empty afterwards).
  while (append_in_flight_) append_cv_.wait(lock);
  if (write_buffer_.empty()) return Status::Ok();
  if (closed_ || file_ == nullptr) {
    return FailedPreconditionError("WalWriter: log is closed");
  }
  std::string local;
  local.swap(write_buffer_);
  WritableFile* file = file_.get();
  append_in_flight_ = true;
  lock.unlock();
  const Status status = file->Append(local.data(), local.size());
  lock.lock();
  append_in_flight_ = false;
  if (status.ok()) {
    bytes_appended_.fetch_add(static_cast<long long>(local.size()),
                              std::memory_order_acq_rel);
  }
  append_cv_.notify_all();
  return status;
}

Status WalWriter::AppendBuffered(const std::string& framed) {
  std::unique_lock<std::mutex> lock(append_mutex_);
  if (closed_ || file_ == nullptr) {
    return FailedPreconditionError("WalWriter: log is closed");
  }
  write_buffer_ += framed;
  if (write_buffer_.size() < options_.buffer_bytes) return Status::Ok();
  return FlushBufferLocked(lock);
}

Status WalWriter::GroupSync(long long appended_through) {
  std::lock_guard<std::mutex> lock(sync_mutex_);
  // Another writer's sync (or a rotation) may already cover our bytes.
  if (bytes_synced_ >= appended_through) return Status::Ok();
  if (file_ == nullptr) return Status::Ok();  // Rotation/Close synced.
  const long long covered = bytes_appended_.load(std::memory_order_acquire);
  FAIRIDX_RETURN_IF_ERROR(file_->Sync());
  bytes_synced_ = std::max(bytes_synced_, covered);
  return Status::Ok();
}

Status WalWriter::AppendBatch(long long seq, const AggregateBatch& batch) {
  const std::string framed = FrameBatchRecord(seq, batch);
  if (options_.fsync == WalFsync::kNone) {
    return AppendBuffered(framed);
  }
  FAIRIDX_RETURN_IF_ERROR(AppendFramed(framed));
  if (options_.fsync == WalFsync::kAlways) {
    return GroupSync(bytes_appended_.load(std::memory_order_acquire));
  }
  return Status::Ok();
}

Status WalWriter::AppendSeal(long long sealed_epoch, bool captured,
                             bool refine, double drift_bound) {
  // An empty plain cut changes nothing on either side of a recovery;
  // logging it would only grow the tail segment.
  if (!captured && !refine) return Status::Ok();
  const std::string framed =
      FrameSealRecord(sealed_epoch, captured, refine, drift_bound);
  std::unique_lock<std::mutex> append_lock(append_mutex_);
  WaitForAppendsLocked(append_lock);
  // Buffered records must hit the file before the seal that cuts their
  // epoch (and certainly before rotation swaps the segment).
  FAIRIDX_RETURN_IF_ERROR(FlushBufferLocked(append_lock));
  FAIRIDX_RETURN_IF_ERROR(AppendRecordLocked(framed));
  std::lock_guard<std::mutex> sync_lock(sync_mutex_);
  if (options_.fsync != WalFsync::kNone) {
    FAIRIDX_RETURN_IF_ERROR(file_->Sync());
    bytes_synced_ = bytes_appended_.load(std::memory_order_acquire);
  }
  if (captured) {
    FAIRIDX_RETURN_IF_ERROR(file_->Close());
    file_ = nullptr;
    FAIRIDX_RETURN_IF_ERROR(OpenSegmentLocked(sealed_epoch + 1));
  }
  return Status::Ok();
}

Status WalWriter::Close() {
  std::unique_lock<std::mutex> append_lock(append_mutex_);
  WaitForAppendsLocked(append_lock);
  const Status flushed = FlushBufferLocked(append_lock);
  std::lock_guard<std::mutex> sync_lock(sync_mutex_);
  if (closed_) return Status::Ok();
  closed_ = true;
  if (file_ == nullptr) return Status::Ok();
  FAIRIDX_RETURN_IF_ERROR(flushed);
  if (options_.fsync != WalFsync::kNone) {
    FAIRIDX_RETURN_IF_ERROR(file_->Sync());
    bytes_synced_ = bytes_appended_.load(std::memory_order_acquire);
  }
  const Status status = file_->Close();
  file_ = nullptr;
  return status;
}

}  // namespace fairidx
