#include "service/sharded_delta_store.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "service/wal.h"

namespace fairidx {
namespace {

using PrefixEntry = GridAggregates::PrefixEntry;

// Whole-batch validation: the batch is accepted or rejected atomically, so
// a failed Ingest leaves no partial per-shard state behind.
Status ValidateBatch(int num_cells, const AggregateBatch& batch) {
  const size_t n = batch.size();
  if (batch.labels.size() != n || batch.scores.size() != n) {
    return InvalidArgumentError(
        "ShardedDeltaStore: cell_ids, labels, scores sizes differ");
  }
  if (!batch.residuals.empty() && batch.residuals.size() != n) {
    return InvalidArgumentError(
        "ShardedDeltaStore: residuals size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    FAIRIDX_RETURN_IF_ERROR(GridAggregates::ValidateRecord(
        num_cells, batch.cell_ids[i], batch.labels[i]));
  }
  return Status::Ok();
}

}  // namespace

ShardedDeltaStore::ShardedDeltaStore(const Grid& grid,
                                     const ShardedDeltaStoreOptions& options)
    : rows_(grid.rows()),
      cols_(grid.cols()),
      num_shards_(std::max(1, options.num_shards)),
      fold_threads_(std::max(1, options.num_threads)),
      force_sharded_fold_(options.force_sharded_fold),
      wal_(options.wal),
      cell_sums_(static_cast<size_t>(grid.num_cells())),
      cell_dirty_epoch_(static_cast<size_t>(grid.num_cells()), -1) {}

Result<std::unique_ptr<ShardedDeltaStore>> ShardedDeltaStore::Build(
    const Grid& grid, const AggregateBatch& warmup,
    const ShardedDeltaStoreOptions& options) {
  // The warmup epoch goes through the same accumulate + FromCellSums pair
  // as DeltaGridAggregates::Build, so epoch 0 is bit-identical to a
  // from-scratch GridAggregates::Build over the warmup records.
  FAIRIDX_ASSIGN_OR_RETURN(
      std::vector<PrefixEntry> cell_sums,
      GridAggregates::AccumulateCellSums(grid, warmup.cell_ids,
                                         warmup.labels, warmup.scores,
                                         warmup.residuals));
  FAIRIDX_ASSIGN_OR_RETURN(
      GridAggregates sealed,
      GridAggregates::FromCellSums(grid.rows(), grid.cols(), cell_sums,
                                   std::max(1, options.num_threads)));
  std::unique_ptr<ShardedDeltaStore> store(
      new ShardedDeltaStore(grid, options));
  for (int cell : warmup.cell_ids) {
    store->cell_dirty_epoch_[static_cast<size_t>(cell)] = 0;
  }
  store->cell_sums_ = std::move(cell_sums);
  store->snapshot_ =
      std::make_shared<const GridAggregates>(std::move(sealed));
  const long long n = static_cast<long long>(warmup.size());
  store->num_records_.store(n, std::memory_order_release);
  store->sealed_records_.store(n, std::memory_order_release);
  store->history_.push_back(SealedEpoch{0, store->snapshot_});
  return store;
}

Result<std::unique_ptr<ShardedDeltaStore>> ShardedDeltaStore::Restore(
    const Grid& grid, std::vector<PrefixEntry> cell_sums, long long epoch,
    long long sealed_records, const ShardedDeltaStoreOptions& options) {
  if (epoch < 0 || sealed_records < 0) {
    return InvalidArgumentError(
        "ShardedDeltaStore: negative epoch or record count");
  }
  if (cell_sums.size() != static_cast<size_t>(grid.num_cells())) {
    return InvalidArgumentError(
        "ShardedDeltaStore: cell sums cover " +
        std::to_string(cell_sums.size()) + " cells, grid has " +
        std::to_string(grid.num_cells()));
  }
  FAIRIDX_ASSIGN_OR_RETURN(
      GridAggregates sealed,
      GridAggregates::FromCellSums(grid.rows(), grid.cols(), cell_sums,
                                   std::max(1, options.num_threads)));
  std::unique_ptr<ShardedDeltaStore> store(
      new ShardedDeltaStore(grid, options));
  store->cell_sums_ = std::move(cell_sums);
  store->snapshot_ =
      std::make_shared<const GridAggregates>(std::move(sealed));
  store->epoch_.store(epoch, std::memory_order_release);
  store->num_records_.store(sealed_records, std::memory_order_release);
  store->sealed_records_.store(sealed_records, std::memory_order_release);
  store->history_.push_back(SealedEpoch{epoch, store->snapshot_});
  return store;
}

Result<long long> ShardedDeltaStore::Ingest(AggregateBatch batch) {
  FAIRIDX_RETURN_IF_ERROR(ValidateBatch(rows_ * cols_, batch));
  // Take ownership outside any lock; sharding happens at fold time
  // (writer-side slicing measured allocation-bound).
  const long long batch_records = static_cast<long long>(batch.size());
  PendingBatch pending;
  pending.batch = std::move(batch);

  // Sequence assignment and the pending append happen under the shared
  // side of the ingest gate: when Seal acquires the exclusive side, every
  // sequence number it can observe is fully appended, so its cut is a
  // consistent batch-set boundary.
  std::shared_lock<std::shared_mutex> gate(ingest_gate_);
  const long long seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  pending.seq = seq;
  // Log-before-pending, still under the shared gate: an accepted batch is
  // in the WAL before any seal can capture it, and a failed append
  // rejects the batch outright, so the log and the pending set can never
  // disagree about which batches exist.
  if (wal_ != nullptr) {
    FAIRIDX_RETURN_IF_ERROR(wal_->AppendBatch(seq, pending.batch));
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.push_back(std::move(pending));
  }
  num_records_.fetch_add(batch_records, std::memory_order_acq_rel);
  pending_records_.fetch_add(batch_records, std::memory_order_acq_rel);
  return seq;
}

Result<SealedEpoch> ShardedDeltaStore::Seal(
    const SealAnnotation& annotation) {
  std::lock_guard<std::mutex> seal_lock(seal_mutex_);

  // The cut: swap the pending list out under the exclusive side of the
  // ingest gate. Writers are blocked only for this swap; the fold below
  // runs with ingest flowing again (new batches land in the emptied
  // pending list and belong to the next epoch).
  std::vector<PendingBatch> captured;
  long long captured_records = 0;
  {
    std::unique_lock<std::shared_mutex> gate(ingest_gate_);
    if (wal_ != nullptr) {
      // The seal record goes into the log BEFORE the swap, still inside
      // the exclusive window: pending_records_ is stable here (writers
      // are gated), so the record's captured flag matches the cut, file
      // order equals cut order, and a failed append aborts the seal with
      // the pending set untouched.
      const bool will_capture =
          pending_records_.load(std::memory_order_acquire) > 0;
      const long long sealed_epoch =
          epoch_.load(std::memory_order_acquire) + (will_capture ? 1 : 0);
      FAIRIDX_RETURN_IF_ERROR(
          wal_->AppendSeal(sealed_epoch, will_capture, annotation.refine,
                           annotation.drift_bound));
    }
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      captured.swap(pending_);
    }
    captured_records =
        pending_records_.exchange(0, std::memory_order_acq_rel);
  }
  if (captured_records == 0) {
    // seal_mutex_ is held: epoch_ and snapshot_ cannot move under us, so
    // the pair is consistent.
    SealedEpoch out;
    out.epoch = epoch_.load(std::memory_order_acquire);
    out.snapshot = snapshot();
    return out;
  }
  std::sort(captured.begin(), captured.end(),
            [](const PendingBatch& a, const PendingBatch& b) {
              return a.seq < b.seq;
            });

  // Fold. Sharded path: one task per shard, each walking the captured
  // batches in sequence order and accumulating ONLY its contiguous cell
  // range, so the dense cell_sums_ writes never overlap (or share cache
  // lines) and each cell sees its records in exactly the serial-replay
  // order. The range test is one compare pair per record — cheaper than
  // writer-side slicing, and the scans run in parallel. When the fold
  // cannot actually run concurrently (one fold thread, one shard, or a
  // workerless pool on a single-core host), the duplicated range scans
  // are pure overhead, so the fold degenerates to ONE sequence-order
  // pass over every record — the restriction to shard ranges commutes
  // with the scan, so both paths accumulate every cell in the identical
  // order.
  const int max_parallelism = std::min(fold_threads_, num_shards_);
  const bool sharded_fold =
      max_parallelism > 1 &&
      (ThreadPool::Shared().num_workers() > 0 || force_sharded_fold_);
  // captured_records > 0 here, so this fold WILL advance the epoch: the
  // dirty stamps written below carry the post-fold epoch number, and they
  // follow the same disjoint-cell-range discipline as cell_sums_ (the
  // sharded tasks each stamp only their own range).
  const long long sealing_epoch =
      epoch_.load(std::memory_order_acquire) + 1;
  if (!sharded_fold) {
    for (const PendingBatch& pending : captured) {
      const AggregateBatch& batch = pending.batch;
      for (size_t i = 0; i < batch.size(); ++i) {
        GridAggregates::AccumulateRecord(
            &cell_sums_[static_cast<size_t>(batch.cell_ids[i])],
            batch.labels[i], batch.scores[i],
            batch.residuals.empty() ? batch.scores[i] - batch.labels[i]
                                    : batch.residuals[i]);
        cell_dirty_epoch_[static_cast<size_t>(batch.cell_ids[i])] =
            sealing_epoch;
      }
    }
  } else {
    const long long num_cells =
        static_cast<long long>(rows_) * static_cast<long long>(cols_);
    ThreadPool::Shared().ParallelFor(
        static_cast<size_t>(num_shards_), max_parallelism, [&](size_t s) {
          const int lo = static_cast<int>(
              static_cast<long long>(s) * num_cells / num_shards_);
          const int hi = static_cast<int>(
              (static_cast<long long>(s) + 1) * num_cells / num_shards_);
          for (const PendingBatch& pending : captured) {
            const AggregateBatch& batch = pending.batch;
            for (size_t i = 0; i < batch.size(); ++i) {
              const int cell = batch.cell_ids[i];
              if (cell < lo || cell >= hi) continue;
              GridAggregates::AccumulateRecord(
                  &cell_sums_[static_cast<size_t>(cell)], batch.labels[i],
                  batch.scores[i],
                  batch.residuals.empty()
                      ? batch.scores[i] - batch.labels[i]
                      : batch.residuals[i]);
              cell_dirty_epoch_[static_cast<size_t>(cell)] = sealing_epoch;
            }
          }
        });
  }

  // The fold's thread budget also drives the prefix integration: the
  // wavefront pipeline is bit-identical at any thread count, so the
  // sealed snapshot stays byte-for-byte the serial-replay snapshot.
  FAIRIDX_ASSIGN_OR_RETURN(
      GridAggregates sealed,
      GridAggregates::FromCellSums(rows_, cols_, cell_sums_,
                                   fold_threads_));
  SealedEpoch out;
  out.snapshot = std::make_shared<const GridAggregates>(std::move(sealed));
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = out.snapshot;
  }
  sealed_records_.fetch_add(captured_records, std::memory_order_acq_rel);
  out.epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    history_.push_back(out);
  }
  return out;
}

ShardedDeltaStore::SealedState ShardedDeltaStore::CaptureSealedState()
    const {
  // seal_mutex_ serializes against folds, and epoch_ / sealed_records_ /
  // cell_sums_ all mutate only with it held, so the triple is a
  // consistent sealed state.
  std::lock_guard<std::mutex> seal_lock(seal_mutex_);
  SealedState state;
  state.epoch = epoch_.load(std::memory_order_acquire);
  state.sealed_records = sealed_records_.load(std::memory_order_acquire);
  state.cell_sums = cell_sums_;
  return state;
}

ShardedDeltaStore::DirtyCells ShardedDeltaStore::CaptureDirtySince(
    long long since_epoch) const {
  // Same consistency argument as CaptureSealedState: seal_mutex_
  // serializes against folds, so the epoch / sums / dirty stamps triple
  // can never interleave with a fold.
  std::lock_guard<std::mutex> seal_lock(seal_mutex_);
  DirtyCells out;
  out.epoch = epoch_.load(std::memory_order_acquire);
  out.sealed_records = sealed_records_.load(std::memory_order_acquire);
  for (size_t cell = 0; cell < cell_dirty_epoch_.size(); ++cell) {
    if (cell_dirty_epoch_[cell] > since_epoch) {
      out.cells.push_back(static_cast<int>(cell));
      out.sums.push_back(cell_sums_[cell]);
    }
  }
  return out;
}

int ShardedDeltaStore::RetainEpochs(int keep_last) {
  const size_t keep = static_cast<size_t>(std::max(1, keep_last));
  std::lock_guard<std::mutex> lock(history_mutex_);
  if (history_.size() <= keep) return 0;
  // Drop from the front, sparing entries whose snapshot a reader still
  // pins (use_count above the history's own reference; snapshot() copies
  // taken by readers keep the aggregates alive regardless — retention
  // only bounds what the STORE keeps alive).
  std::vector<SealedEpoch> kept;
  kept.reserve(history_.size());
  int dropped = 0;
  const size_t boundary = history_.size() - keep;
  for (size_t i = 0; i < history_.size(); ++i) {
    if (i < boundary && history_[i].snapshot.use_count() <= 1) {
      ++dropped;
      continue;
    }
    kept.push_back(std::move(history_[i]));
  }
  history_ = std::move(kept);
  return dropped;
}

int ShardedDeltaStore::history_size() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  return static_cast<int>(history_.size());
}

std::shared_ptr<const GridAggregates> ShardedDeltaStore::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::vector<RegionAggregate> ShardedDeltaStore::QueryMany(
    Span<CellRect> rects) const {
  return snapshot()->QueryMany(rects);
}

RegionAggregate ShardedDeltaStore::Query(const CellRect& rect) const {
  return snapshot()->Query(rect);
}

}  // namespace fairidx
