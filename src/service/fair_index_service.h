// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// FairIndexService: the concurrent serving front-end for a fair spatial
// index over streaming data. It owns four pieces:
//
//   * a ShardedDeltaStore — the epoch-based sharded aggregate store
//     (writers append per-shard, readers query sealed snapshots);
//   * a registry-built Partitioner (any supports_refine structure: the
//     Fair KD-tree, the median KD-tree, the greedy fair quadtree, ...)
//     holding the maintained partition and its recorded split tree;
//   * the published region list readers serve from;
//   * the published PointLookupIndex snapshot — the point-lookup read
//     path (O(1) "which region is this point in, with what aggregate"),
//     an immutable partition/aggregate pair from one sealed epoch.
//
// The operations compose into the serving loop:
//
//   Ingest(batch)   any number of writer threads, concurrently
//   Query*(...)     any number of reader threads, against the last sealed
//                   epoch and the currently published partition
//   Lookup*(...)    any number of reader threads, wait-free against the
//                   published lookup snapshot (one shared_ptr load; the
//                   snapshot can never be a torn partition/aggregate pair)
//   MaybeRefine()   a maintenance thread: seals an epoch, re-splits the
//                   subtrees whose calibration gap drifted past the bound
//                   AGAINST THAT SEALED EPOCH, and atomically publishes
//                   the new region list. Readers keep serving the previous
//                   partition (and writers keep ingesting) for the whole
//                   re-split; only the final publish swaps a pointer.
//
// MaybeRefine can be caller-driven, or owned by the service itself: a
// MaintenancePolicy (service/maintenance_scheduler.h) seals by pending
// record count or wall clock and refines on measured calibration drift
// from a background thread, started via options.auto_maintain or
// StartMaintenance(). The scheduler only calls the public thread-safe
// surface, so hands-off operation is behaviorally identical to a caller
// running the same cadence.
//
// Determinism: sealed epochs are bit-identical to a serial single-writer
// replay (see sharded_delta_store.h), and every maintenance decision keys
// off a sealed epoch, so a service driven by one thread reproduces the
// hand-wired DeltaGridAggregates + KdTreeMaintainer loop exactly — the
// single-writer overlay is the 1-shard specialization, not a fork.

#ifndef FAIRIDX_SERVICE_FAIR_INDEX_SERVICE_H_
#define FAIRIDX_SERVICE_FAIR_INDEX_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "index/partitioner.h"
#include "service/maintenance_scheduler.h"
#include "service/point_lookup.h"
#include "service/sharded_delta_store.h"
#include "service/wal.h"

namespace fairidx {

/// Durability for a serving instance (see service/wal.h and
/// service/checkpoint.h): every accepted batch is write-ahead logged,
/// sealed state is periodically checkpointed, and Recover() rebuilds a
/// service bit-identical to the uninterrupted run from the newest valid
/// checkpoint plus a WAL tail replay.
struct DurabilityOptions {
  /// Directory for WAL segments and checkpoint files. Empty disables
  /// durability entirely.
  std::string wal_dir;
  /// When WAL appends reach stable storage (none | batch | always). Every
  /// mode write()s through on Append, so a process kill loses nothing;
  /// the modes differ only in the OS/power-failure window.
  WalFsync fsync = WalFsync::kBatch;
  /// Write a checkpoint every this many sealed epochs (<= 0: checkpoint
  /// only at Create/Recover). Each checkpoint prunes fully-covered WAL
  /// segments, bounding log disk usage.
  long long checkpoint_interval = 8;
  /// Every Nth periodic checkpoint is a FULL snapshot; the others are
  /// delta checkpoints carrying only the cells dirtied since the previous
  /// checkpoint (see service/checkpoint.h) — O(changed) instead of
  /// O(grid). <= 1 makes every checkpoint full (the default; identical to
  /// the pre-delta behavior). Create/Recover always write a full
  /// snapshot, so every delta chain has an on-disk base. Recovery is
  /// bit-identical either way.
  long long full_snapshot_interval = 1;
  /// Checkpoint files kept on disk (older ones are pruned; >= 1).
  int keep_checkpoints = 2;
  /// Fault-injection seam for WAL and checkpoint file I/O; null uses
  /// OpenWritableFile.
  WritableFileFactory file_factory;
};

/// Configuration for a serving instance.
struct FairIndexServiceOptions {
  /// PartitionerRegistry name; must be a supports_refine structure
  /// ("fair_kd_tree", "median_kd_tree", "fair_quadtree").
  std::string algorithm = "fair_kd_tree";
  /// Build options for the partitioner (height, objective, threads, ...).
  PartitionerBuildOptions build;
  /// Sharding / fold-parallelism for the aggregate store.
  ShardedDeltaStoreOptions store;
  /// Default drift bound for MaybeRefine().
  KdRefineOptions refine;
  /// Start the background maintenance thread on Create (hands-off
  /// serving: the service seals and refines per `maintain`, no caller
  /// MaybeRefine needed).
  bool auto_maintain = false;
  /// Policy for the background thread (used only with auto_maintain or
  /// an explicit StartMaintenance call).
  MaintenancePolicy maintain;
  /// Write-ahead logging + checkpoints (disabled while wal_dir is empty).
  DurabilityOptions durability;
};

/// What one MaybeRefine pass did.
struct ServiceRefineResult {
  /// The epoch the maintenance pass sealed and keyed off.
  long long epoch = 0;
  /// The underlying tree-maintenance stats (subtrees_rebuilt > 0 and
  /// changed when a new partition was published).
  KdRefineStats stats;
};

/// Concurrent serving façade (see file header). Create once per stream;
/// all public methods are thread-safe.
class FairIndexService {
 public:
  /// Builds the store (epoch 0 = the warmup records) and the initial
  /// partition from that sealed epoch.
  static Result<std::unique_ptr<FairIndexService>> Create(
      const Grid& grid, const AggregateBatch& warmup,
      const FairIndexServiceOptions& options);

  /// Rebuilds a service from options.durability.wal_dir: loads the newest
  /// valid checkpoint, replays the WAL tail (batches per epoch in their
  /// original sequence order, seal/refine records re-applied through the
  /// public path) and resumes logging under a fresh WAL generation. The
  /// recovered service is bit-identical to the uninterrupted run at every
  /// sealed epoch: snapshot cell sums, published partition, epoch and
  /// record counters (unsealed trailing batches return to the pending
  /// set). A torn trailing WAL record (crash mid-append) is detected by
  /// CRC and dropped; corruption anywhere earlier is a hard DataLoss
  /// error. `grid` and `options` must match the original Create call.
  static Result<std::unique_ptr<FairIndexService>> Recover(
      const Grid& grid, const FairIndexServiceOptions& options);

  FairIndexService(const FairIndexService&) = delete;
  FairIndexService& operator=(const FairIndexService&) = delete;

  /// Stops background maintenance (if running) before teardown.
  ~FairIndexService();

  /// Appends one batch to the store's pending set (visible to queries
  /// after the next seal). Returns the batch's sequence number. By
  /// value: temporaries move all the way into the store.
  Result<long long> Ingest(AggregateBatch batch);

  /// Seals the current epoch (folds pending batches into a fresh
  /// snapshot). Returns the epoch number.
  Result<long long> Seal();

  /// The currently published partition's region rects. The returned
  /// vector is immutable and stays valid across later refines.
  std::shared_ptr<const std::vector<CellRect>> regions() const;

  /// Aggregates of the published partition's regions against the last
  /// sealed epoch — the region-fleet monitoring query (one QueryMany).
  std::vector<RegionAggregate> QueryRegions() const;

  /// Aggregates of caller rects against the last sealed epoch.
  std::vector<RegionAggregate> Query(Span<CellRect> rects) const;

  /// The current point-lookup snapshot (see service/point_lookup.h):
  /// the published partition's flat cell -> region map paired with that
  /// partition's per-region aggregates off ONE sealed epoch. Pin it once
  /// and answer any number of lookups from it — the snapshot stays
  /// immutable and internally consistent however many seals or refines
  /// land meanwhile. Never null after Create/Recover.
  std::shared_ptr<const PointLookupIndex> lookup() const;

  /// O(1) point lookup against the current snapshot: the region id of
  /// the point's cell plus that region's aggregate from the snapshot's
  /// sealed epoch — by construction never a torn partition/aggregate
  /// pair. Points outside the grid clamp to the border cells.
  PointLookupResult Lookup(const Point& p) const;
  PointLookupResult Lookup(double x, double y) const {
    return Lookup(Point{x, y});
  }

  /// Batched point lookups, all answered from ONE snapshot pin: every
  /// result in the batch comes from the same partition and sealed epoch,
  /// and the single pointer load is amortized over the whole batch.
  /// `out` must have room for points.size() entries.
  void LookupMany(Span<Point> points, PointLookupResult* out) const;
  std::vector<PointLookupResult> LookupMany(Span<Point> points) const;

  /// Seals an epoch and evaluates drift at every node of the maintained
  /// tree against it; drifted subtrees are re-split off that sealed
  /// snapshot and the new region list is published atomically at the end.
  /// No drift past the bound -> an exact no-op (stats.changed == false).
  /// Serialized with itself; Ingest and Query* continue concurrently.
  Result<ServiceRefineResult> MaybeRefine(const KdRefineOptions& options);
  Result<ServiceRefineResult> MaybeRefine() {
    return MaybeRefine(options_.refine);
  }

  /// The aggregate store (epoch / record counters, direct snapshots).
  const ShardedDeltaStore& store() const { return *store_; }

  /// Subtree re-splits published over the service's lifetime.
  long long total_resplits() const;

  /// Starts service-owned background maintenance under `policy`
  /// (validated: at least one cadence enabled, positive poll interval).
  /// Fails when a scheduler is already running.
  Status StartMaintenance(const MaintenancePolicy& policy);

  /// Stops and joins the background maintenance thread. Idempotent.
  void StopMaintenance();

  bool maintenance_running() const;

  /// Counters of the current (or last stopped) scheduler; zeros when
  /// maintenance never started.
  MaintenanceStats maintenance_stats() const;

  /// Writes a checkpoint of the current sealed state now (durability must
  /// be enabled), pruning old checkpoints and fully-covered WAL segments.
  Status Checkpoint();

  /// Applies epoch retention to the store (keep the newest `keep_last`
  /// sealed snapshots plus reader-pinned ones); returns entries dropped.
  /// The background scheduler calls this when its policy sets
  /// retain_epochs.
  int ApplyRetention(int keep_last);

  /// Durability observability (null / 0 when durability is disabled).
  const WalWriter* wal() const { return wal_.get(); }
  long long last_checkpoint_epoch() const;

  /// Worst single publication swap so far: max wall-clock micros spent
  /// inside PublishMaintainedLocked (snapshot build + pointer swap) over
  /// the service's lifetime — what a reader-visible publish stall costs.
  long long max_publish_stall_us() const {
    return max_publish_stall_us_.load(std::memory_order_relaxed);
  }
  /// Worst single checkpoint so far: max wall-clock micros spent writing
  /// one (full or delta) checkpoint, including pruning.
  long long max_checkpoint_stall_us() const {
    return max_checkpoint_stall_us_.load(std::memory_order_relaxed);
  }

  /// Lifetime partition publications that went out via an O(changed area)
  /// cell-map patch (in-place or splice) vs. a full O(grid) rebuild —
  /// the service-level view of the maintainers' patched paths. Counted
  /// for caller-driven MaybeRefine AND scheduler passes.
  long long publications_patched() const;
  long long publications_fallback() const;

 private:
  FairIndexService(const Grid& grid, FairIndexServiceOptions options,
                   std::unique_ptr<WalWriter> wal,
                   std::unique_ptr<ShardedDeltaStore> store,
                   std::unique_ptr<Partitioner> partitioner);

  /// Builds and publishes a fresh lookup snapshot pairing the current
  /// partition with `sealed_snapshot`'s aggregates at `epoch`; when
  /// `partition_changed` it freezes a copy of the maintained partition
  /// and atomically swaps regions_ to the same rects object, otherwise
  /// it reuses the published partition/rects (aggregates-only refresh —
  /// regions() pointer identity is preserved, which the zero-drift
  /// no-republish test pins). Requires maintain_mutex_ held: it pins
  /// the maintained partition and orders competing publications so the
  /// epoch-monotonic guard inside can never roll the lookup backwards.
  Status PublishMaintainedLocked(const GridAggregates& sealed_snapshot,
                                 long long epoch, bool partition_changed);

  /// Checkpoint when the sealed epoch has advanced past the configured
  /// interval since the last one (no-op otherwise / without durability).
  Status MaybeCheckpoint();
  /// Unconditional checkpoint. Lock order: durability_mutex_ ->
  /// maintain_mutex_ -> (store seal lock), the same nesting MaybeRefine's
  /// maintain -> seal path uses. `allow_delta` lets the
  /// full_snapshot_interval cadence pick a delta checkpoint; false forces
  /// a full snapshot (Create/Recover, so chains always have a base).
  Status WriteCheckpointNow(bool allow_delta);

  /// Replays every WAL segment with epoch > `through_epoch` through the
  /// public Ingest/Seal/MaybeRefine path (re-logging into the new
  /// generation). Within each epoch, batches are re-ingested in their
  /// original sequence order, so the fold order — and the sealed sums —
  /// are bit-identical to the uninterrupted run.
  Status ReplayWalTail(const std::vector<WalSegmentInfo>& segments,
                       long long through_epoch);

  /// The base grid (copied in; Grid is a small value type). Lookup
  /// snapshots carry their own copy, so readers never touch this one.
  Grid grid_;
  FairIndexServiceOptions options_;
  /// Write-ahead log (null when durability is disabled). Declared before
  /// store_: the store holds a raw pointer and must be torn down first.
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<ShardedDeltaStore> store_;

  /// Serializes checkpoint writes and guards the checkpoint-chain
  /// bookkeeping below.
  mutable std::mutex durability_mutex_;
  long long last_checkpoint_epoch_ = 0;
  /// (epoch, generation) of the newest checkpoint file — the prev link
  /// the next delta names.
  long long last_checkpoint_generation_ = 0;
  /// Deltas written since the last full snapshot (drives the
  /// full_snapshot_interval cadence).
  long long checkpoints_since_full_ = 0;
  /// A full snapshot exists from THIS run's WAL generation (deltas may
  /// only chain within a run; Create/Recover both start with a full).
  bool has_full_base_ = false;

  /// Serializes maintenance (the partitioner's mutable tree state).
  mutable std::mutex maintain_mutex_;
  std::unique_ptr<Partitioner> partitioner_;
  long long total_resplits_ = 0;  // Guarded by maintain_mutex_.
  /// Partition-changing publications by publish path (see the public
  /// accessors). Guarded by maintain_mutex_.
  long long publications_patched_ = 0;
  long long publications_fallback_ = 0;

  /// Lifetime maxima for the publish / checkpoint stall metrics
  /// (fetch-max via CAS; relaxed — observability only).
  std::atomic<long long> max_publish_stall_us_{0};
  std::atomic<long long> max_checkpoint_stall_us_{0};

  /// Publication point readers load; swapped only at the end of a refine.
  mutable std::mutex regions_mutex_;
  std::shared_ptr<const std::vector<CellRect>> regions_;
  /// The point-lookup snapshot (also guarded by regions_mutex_; swapped
  /// together with regions_ on partition changes so lookup()->regions()
  /// and regions() are the SAME object, and refreshed aggregates-only on
  /// plain seals). Epoch-monotonic: only PublishMaintainedLocked swaps it.
  std::shared_ptr<const PointLookupIndex> lookup_;

  /// Background maintenance (service-owned; optional). The scheduler only
  /// calls public methods, so it layers strictly above the other state.
  mutable std::mutex scheduler_mutex_;
  std::unique_ptr<MaintenanceScheduler> scheduler_;
};

}  // namespace fairidx

#endif  // FAIRIDX_SERVICE_FAIR_INDEX_SERVICE_H_
