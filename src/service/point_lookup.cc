#include "service/point_lookup.h"

#include <string>
#include <utility>

namespace fairidx {

Result<PointLookupIndex> PointLookupIndex::Build(
    const Grid& grid, std::shared_ptr<const Partition> partition,
    std::shared_ptr<const std::vector<CellRect>> regions,
    std::vector<RegionAggregate> aggregates, long long epoch) {
  if (partition == nullptr) {
    return InvalidArgumentError("PointLookupIndex: null partition");
  }
  if (regions == nullptr) {
    return InvalidArgumentError("PointLookupIndex: null regions");
  }
  if (partition->num_cells() != grid.num_cells()) {
    return InvalidArgumentError(
        "PointLookupIndex: partition covers " +
        std::to_string(partition->num_cells()) + " cells, grid has " +
        std::to_string(grid.num_cells()));
  }
  if (static_cast<int>(aggregates.size()) != partition->num_regions()) {
    return InvalidArgumentError(
        "PointLookupIndex: " + std::to_string(aggregates.size()) +
        " aggregates for " + std::to_string(partition->num_regions()) +
        " regions");
  }
  if (!regions->empty() &&
      static_cast<int>(regions->size()) != partition->num_regions()) {
    return InvalidArgumentError(
        "PointLookupIndex: " + std::to_string(regions->size()) +
        " region rects for " + std::to_string(partition->num_regions()) +
        " regions");
  }
  return PointLookupIndex(grid, std::move(partition), std::move(regions),
                          std::move(aggregates), epoch);
}

void PointLookupIndex::LookupMany(Span<Point> points,
                                  PointLookupResult* out) const {
  // Two passes: resolving the whole block of region ids first keeps the
  // flat cell-map loads back to back (the same scattered-load overlap
  // that pays for GridAggregates::QueryMany), then the aggregate copies
  // stream through the region table.
  for (size_t i = 0; i < points.size(); ++i) {
    out[i].region = RegionOfPoint(points[i]);
  }
  for (size_t i = 0; i < points.size(); ++i) {
    out[i].aggregate = aggregates_[out[i].region];
  }
}

std::vector<PointLookupResult> PointLookupIndex::LookupMany(
    Span<Point> points) const {
  std::vector<PointLookupResult> out(points.size());
  LookupMany(points, out.data());
  return out;
}

}  // namespace fairidx
