#include "core/iterative_fair_kd_tree.h"

#include "geo/grid_aggregates.h"

namespace fairidx {

Result<IterativeFairKdTreeResult> BuildIterativeFairKdTree(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const IterativeFairKdTreeOptions& options) {
  if (options.height < 0) {
    return InvalidArgumentError("iterative fair KD: height must be >= 0");
  }
  if (options.task < 0 || options.task >= dataset.num_tasks()) {
    return InvalidArgumentError("iterative fair KD: invalid task");
  }
  if (split.train_indices.empty()) {
    return InvalidArgumentError("iterative fair KD: empty training split");
  }

  // Work on a copy: the algorithm rewrites neighborhoods level by level.
  Dataset working = dataset;
  working.SetSingleNeighborhood();
  const Grid& grid = working.grid();
  const std::vector<int>& labels = working.labels(options.task);

  std::vector<CellRect> regions = {grid.FullRect()};
  IterativeFairKdTreeResult out;

  DesignMatrixOptions design_options;
  design_options.encoding = options.encoding;
  design_options.task = options.task;
  design_options.encoding_fit_indices = split.train_indices;

  // Gathered training views, reused across levels.
  std::vector<int> train_labels;
  train_labels.reserve(split.train_indices.size());
  for (size_t i : split.train_indices) train_labels.push_back(labels[i]);
  std::vector<int> train_cells;
  train_cells.reserve(split.train_indices.size());
  for (size_t i : split.train_indices) {
    train_cells.push_back(working.base_cells()[i]);
  }

  for (int level = 0; level < options.height; ++level) {
    const int remaining_height = options.height - level;  // th in Alg. 3.

    // Train on the current neighborhoods and refresh scores (Alg. 3 line 5).
    FAIRIDX_ASSIGN_OR_RETURN(Matrix design,
                             working.DesignMatrix(design_options));
    const Matrix train_design = design.SelectRows(split.train_indices);
    std::unique_ptr<Classifier> model = prototype.Clone();
    FAIRIDX_RETURN_IF_ERROR(model->Fit(train_design, train_labels, nullptr));
    ++out.retrain_count;
    FAIRIDX_ASSIGN_OR_RETURN(std::vector<double> train_scores,
                             model->PredictScores(train_design));

    FAIRIDX_ASSIGN_OR_RETURN(
        GridAggregates aggregates,
        GridAggregates::Build(grid, train_cells, train_labels, train_scores));

    // Split every region at this level (Alg. 3 lines 7-9).
    const int axis = remaining_height % 2;
    regions = SplitAllRegions(aggregates, regions, axis, options.objective,
                              options.axis_policy, options.num_threads);

    // Re-district for the next level's training (Alg. 3 line 11).
    FAIRIDX_ASSIGN_OR_RETURN(Partition level_partition,
                             Partition::FromRects(grid, regions));
    FAIRIDX_RETURN_IF_ERROR(working.SetNeighborhoodsFromCellMap(
        level_partition.cell_to_region()));
  }

  FAIRIDX_ASSIGN_OR_RETURN(Partition partition,
                           Partition::FromRects(grid, regions));
  out.partition.partition = std::move(partition);
  out.partition.regions = std::move(regions);
  return out;
}

}  // namespace fairidx
