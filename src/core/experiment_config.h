// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared experiment configuration for the benchmark harness: the paper's
// two cities, three classifiers, and sweep defaults.

#ifndef FAIRIDX_CORE_EXPERIMENT_CONFIG_H_
#define FAIRIDX_CORE_EXPERIMENT_CONFIG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/edgap_synthetic.h"
#include "ml/classifier.h"

namespace fairidx {

/// The classifier families evaluated in the paper.
enum class ClassifierKind {
  kLogisticRegression,
  kDecisionTree,
  kNaiveBayes,
};

/// Stable display name ("logistic_regression", ...).
const char* ClassifierKindName(ClassifierKind kind);

/// Parses a classifier name — the full ClassifierKindName or the CLI
/// shorthands lr | tree | nb. InvalidArgument on anything else.
Result<ClassifierKind> ParseClassifierKind(const std::string& name);

/// Constructs an unfitted classifier of the given family with the library's
/// default hyper-parameters.
std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind);

/// All three classifier kinds, in the paper's order.
std::vector<ClassifierKind> AllClassifierKinds();

/// The paper's two evaluation cities (synthetic stand-ins; see DESIGN.md).
std::vector<CityConfig> PaperCities();

/// The paper's Fig. 7/8 height sweep: 4..10.
std::vector<int> PaperHeightSweep();

/// The paper's Fig. 10 height subset: 4, 6, 8, 10.
std::vector<int> PaperMultiObjectiveHeights();

}  // namespace fairidx

#endif  // FAIRIDX_CORE_EXPERIMENT_CONFIG_H_
