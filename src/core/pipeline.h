// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// The end-to-end fair spatial indexing pipeline (Fig. 2-3 of the paper):
//
//   1. train an initial classifier with the base-grid cell as the location
//      feature and collect confidence scores;
//   2. build a spatial partition (Fair KD-tree / baselines) from those
//      scores;
//   3. re-district every record's neighborhood attribute and retrain;
//   4. evaluate ENCE, accuracy and miscalibration on train/test splits.
//
// This is the public entry point a downstream user calls.

#ifndef FAIRIDX_CORE_PIPELINE_H_
#define FAIRIDX_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/evaluation.h"
#include "data/dataset.h"
#include "data/split.h"
#include "index/kd_tree.h"
#include "index/partition.h"
#include "index/partitioner.h"
#include "index/split_objective.h"
#include "ml/classifier.h"

namespace fairidx {

/// The partitioning algorithms runnable through the pipeline: the paper's
/// three contributions, its three baselines, and fairidx's two structural
/// extensions. Each value maps 1:1 onto a PartitionerRegistry name; the
/// enum exists for type-safe option structs while the registry remains the
/// open, extensible surface.
enum class PartitionAlgorithm {
  kMedianKdTree,          // Paper baseline: standard KD-tree.
  kFairKdTree,            // Algorithm 1.
  kIterativeFairKdTree,   // Algorithm 3.
  kMultiObjectiveFairKdTree,  // Section 4.3 (needs >= 2 tasks).
  kUniformGridReweight,   // Paper baseline: grid + Kamiran-Calders weights.
  kZipCodes,              // Paper baseline: zip-code partitioning.
  kFairQuadtree,          // Extension: greedy fairness-first quadtree.
  kStrSlabs,              // Extension: STR (R-tree family) slab packing.
};

/// Stable display name ("fair_kd_tree", ...) — also the registry name.
const char* PartitionAlgorithmName(PartitionAlgorithm algorithm);

/// The inverse of PartitionAlgorithmName: the single name -> enum map the
/// CLI, scenario files and benches all share (InvalidArgument on unknown
/// names, listing the valid ones).
Result<PartitionAlgorithm> ParsePartitionAlgorithm(const std::string& name);

/// Every PartitionAlgorithm, in the enum's (paper) order.
std::vector<PartitionAlgorithm> AllPartitionAlgorithms();

/// Pipeline configuration.
struct PipelineOptions {
  PartitionAlgorithm algorithm = PartitionAlgorithm::kFairKdTree;
  /// Tree height th; non-tree algorithms target 2^height regions.
  int height = 6;
  /// Task the pipeline trains/evaluates (multi-objective balances all tasks
  /// but still reports metrics for this one).
  int task = 0;
  NeighborhoodEncoding encoding = NeighborhoodEncoding::kNumericId;
  /// Split objective for the fair trees (ablations override this).
  SplitObjectiveOptions split_objective{SplitObjectiveKind::kPaperEq9, 0.0};
  /// Axis selection for the one-shot fair tree (paper: alternating).
  AxisPolicy axis_policy = AxisPolicy::kAlternate;
  /// Early-stop threshold on node weighted miscalibration for the one-shot
  /// fair tree; < 0 disables (paper behaviour).
  double split_early_stop = -1.0;
  /// Multi-objective settings (used only by kMultiObjectiveFairKdTree).
  std::vector<double> multi_objective_alphas;
  bool multi_objective_eq9_weighting = false;
  /// Train/test split.
  double test_fraction = 0.25;
  uint64_t split_seed = 20240601;
  /// If > 0, cell-based partitions are post-processed so every region
  /// holds at least this many records (adjacent-region merging; see
  /// index/region_merging.h). Merging never increases ENCE (Theorem 2).
  double min_region_population = 0.0;
  /// Threads for the partition-construction stage (task-parallel subtree
  /// builds for the KD trees, chunked region splits for the iterative
  /// tree). The resulting partition is identical at any thread count;
  /// <= 1 runs fully sequentially.
  int num_threads = 1;
};

/// Everything a pipeline run produces.
struct PipelineRunResult {
  /// Cell-based partition (regions empty for kZipCodes, which assigns
  /// neighborhoods per record).
  bool has_cell_partition = false;
  PartitionResult partition;
  /// Final per-record neighborhood ids.
  std::vector<int> record_neighborhoods;
  /// Final model scores + indicators.
  TrainedEvaluation final_model;
  /// The split used (deterministic in split_seed).
  TrainTestSplit split;
  /// Wall-clock seconds spent building the partition (including any model
  /// training the algorithm itself performs, per Theorems 3-5).
  double partition_seconds = 0.0;
  /// Model fits performed by the partitioning stage.
  int partition_stage_fits = 0;
};

/// Runs the full pipeline on a copy of `dataset` (the input is unchanged).
/// `prototype` supplies the classifier family (cloned for each fit). The
/// partition stage dispatches through the PartitionerRegistry under
/// PartitionAlgorithmName(options.algorithm).
Result<PipelineRunResult> RunPipeline(const Dataset& dataset,
                                      const Classifier& prototype,
                                      const PipelineOptions& options);

/// Step-1 helper, exposed for benches/tests: trains on the base grid (cell
/// id as neighborhood) and returns scores for all records.
Result<TrainedEvaluation> TrainOnBaseGrid(const Dataset& dataset,
                                          const TrainTestSplit& split,
                                          const Classifier& prototype,
                                          const EvalOptions& options);

/// Maps PipelineOptions onto the algorithm-facing build options.
PartitionerBuildOptions ToPartitionerBuildOptions(
    const PipelineOptions& options);

/// A PartitionerContext wired to the pipeline's stage-1 initial training
/// (TrainOnBaseGrid) — what RunPipeline itself hands to the registry
/// partitioners, exposed so tools and tests can drive them directly.
PartitionerContext MakePipelinePartitionerContext(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const PartitionerBuildOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_PIPELINE_H_
