#include "core/experiment_config.h"

#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace fairidx {

const char* ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLogisticRegression:
      return "logistic_regression";
    case ClassifierKind::kDecisionTree:
      return "decision_tree";
    case ClassifierKind::kNaiveBayes:
      return "naive_bayes";
  }
  return "unknown";
}

Result<ClassifierKind> ParseClassifierKind(const std::string& name) {
  if (name == "lr" || name == "logistic_regression") {
    return ClassifierKind::kLogisticRegression;
  }
  if (name == "tree" || name == "decision_tree") {
    return ClassifierKind::kDecisionTree;
  }
  if (name == "nb" || name == "naive_bayes") {
    return ClassifierKind::kNaiveBayes;
  }
  return InvalidArgumentError("unknown classifier '" + name +
                              "' (expected lr|tree|nb)");
}

std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>();
    case ClassifierKind::kDecisionTree:
      return std::make_unique<DecisionTree>();
    case ClassifierKind::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
  }
  return nullptr;
}

std::vector<ClassifierKind> AllClassifierKinds() {
  return {ClassifierKind::kLogisticRegression, ClassifierKind::kDecisionTree,
          ClassifierKind::kNaiveBayes};
}

std::vector<CityConfig> PaperCities() {
  return {LosAngelesConfig(), HoustonConfig()};
}

std::vector<int> PaperHeightSweep() { return {4, 5, 6, 7, 8, 9, 10}; }

std::vector<int> PaperMultiObjectiveHeights() { return {4, 6, 8, 10}; }

}  // namespace fairidx
