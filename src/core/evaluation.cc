#include "core/evaluation.h"

#include <algorithm>

#include "fairness/calibration.h"
#include "fairness/ence.h"
#include "fairness/reweighting.h"
#include "ml/metrics.h"

namespace fairidx {
namespace {

// Gathers the subset of a vector at `indices`.
template <typename T>
std::vector<T> Gather(const std::vector<T>& values,
                      const std::vector<size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(values[i]);
  return out;
}

}  // namespace

Result<TrainedEvaluation> TrainAndEvaluate(const Dataset& dataset,
                                           const TrainTestSplit& split,
                                           const Classifier& prototype,
                                           const EvalOptions& options) {
  if (options.task < 0 || options.task >= dataset.num_tasks()) {
    return InvalidArgumentError("TrainAndEvaluate: invalid task index");
  }
  if (split.train_indices.empty() || split.test_indices.empty()) {
    return InvalidArgumentError("TrainAndEvaluate: empty split side");
  }

  DesignMatrixOptions design_options;
  design_options.encoding = options.encoding;
  design_options.task = options.task;
  design_options.encoding_fit_indices = split.train_indices;
  std::vector<std::string> column_names;
  FAIRIDX_ASSIGN_OR_RETURN(Matrix design,
                           dataset.DesignMatrix(design_options,
                                                &column_names));

  const std::vector<int>& labels = dataset.labels(options.task);
  const Matrix train_design = design.SelectRows(split.train_indices);
  const std::vector<int> train_labels = Gather(labels, split.train_indices);

  std::unique_ptr<Classifier> model = prototype.Clone();
  if (options.reweight_by_neighborhood) {
    FAIRIDX_ASSIGN_OR_RETURN(
        std::vector<double> all_weights,
        ComputeReweightingWeightsSubset(dataset.neighborhoods(), labels,
                                        split.train_indices));
    const std::vector<double> train_weights =
        Gather(all_weights, split.train_indices);
    FAIRIDX_RETURN_IF_ERROR(
        model->Fit(train_design, train_labels, &train_weights));
  } else {
    FAIRIDX_RETURN_IF_ERROR(model->Fit(train_design, train_labels, nullptr));
  }

  TrainedEvaluation out;
  FAIRIDX_ASSIGN_OR_RETURN(out.scores, model->PredictScores(design));

  const std::vector<double> train_scores =
      Gather(out.scores, split.train_indices);
  const std::vector<double> test_scores =
      Gather(out.scores, split.test_indices);
  const std::vector<int> test_labels = Gather(labels, split.test_indices);

  EvaluationResult& eval = out.eval;
  FAIRIDX_ASSIGN_OR_RETURN(eval.train_accuracy,
                           Accuracy(train_scores, train_labels));
  FAIRIDX_ASSIGN_OR_RETURN(eval.test_accuracy,
                           Accuracy(test_scores, test_labels));

  FAIRIDX_ASSIGN_OR_RETURN(CalibrationStats train_calibration,
                           ComputeCalibration(train_scores, train_labels));
  FAIRIDX_ASSIGN_OR_RETURN(CalibrationStats test_calibration,
                           ComputeCalibration(test_scores, test_labels));
  eval.train_miscalibration = train_calibration.AbsMiscalibration();
  eval.test_miscalibration = test_calibration.AbsMiscalibration();

  FAIRIDX_ASSIGN_OR_RETURN(
      eval.train_ence,
      EnceSubset(out.scores, labels, dataset.neighborhoods(),
                 split.train_indices));
  FAIRIDX_ASSIGN_OR_RETURN(
      eval.test_ence,
      EnceSubset(out.scores, labels, dataset.neighborhoods(),
                 split.test_indices));

  // Count distinct neighborhoods actually populated by records.
  std::vector<int> seen;
  for (int n : dataset.neighborhoods()) seen.push_back(n);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  eval.num_neighborhoods = static_cast<int>(seen.size());

  eval.feature_importances = model->FeatureImportances();
  eval.feature_names = std::move(column_names);
  return out;
}

}  // namespace fairidx
