#include "core/height_selection.h"

namespace fairidx {

Result<HeightSelectionResult> SelectHeight(
    const Dataset& dataset, const Classifier& prototype,
    const HeightSelectionOptions& options) {
  if (options.max_height < 0) {
    return InvalidArgumentError("SelectHeight: max_height must be >= 0");
  }
  if (options.ence_budget < 0.0) {
    return InvalidArgumentError("SelectHeight: ence_budget must be >= 0");
  }

  HeightSelectionResult result;
  for (int height = 0; height <= options.max_height; ++height) {
    PipelineOptions pipeline_options = options.pipeline;
    pipeline_options.height = height;
    FAIRIDX_ASSIGN_OR_RETURN(PipelineRunResult run,
                             RunPipeline(dataset, prototype,
                                         pipeline_options));
    HeightSweepPoint point;
    point.height = height;
    point.num_regions = run.final_model.eval.num_neighborhoods;
    point.train_ence = run.final_model.eval.train_ence;
    point.test_ence = run.final_model.eval.test_ence;
    point.test_accuracy = run.final_model.eval.test_accuracy;
    result.sweep.push_back(point);

    if (point.train_ence <= options.ence_budget) {
      result.selected_height = height;
      result.budget_met = true;
    }
  }
  return result;
}

}  // namespace fairidx
