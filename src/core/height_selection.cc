#include "core/height_selection.h"

#include <optional>

#include "common/thread_pool.h"

namespace fairidx {

Result<HeightSelectionResult> SelectHeight(
    const Dataset& dataset, const Classifier& prototype,
    const HeightSelectionOptions& options) {
  if (options.max_height < 0) {
    return InvalidArgumentError("SelectHeight: max_height must be >= 0");
  }
  if (options.ence_budget < 0.0) {
    return InvalidArgumentError("SelectHeight: ence_budget must be >= 0");
  }

  // Every sweep point is an independent pipeline run; with
  // pipeline.num_threads > 1 they run concurrently on the shared pool.
  // Only the sweep point survives each run (the bulky PipelineRunResult
  // dies inside the task), and selection below walks the slots in
  // ascending height order, so the outcome is identical at any thread
  // count.
  const size_t num_points = static_cast<size_t>(options.max_height) + 1;
  std::vector<std::optional<Result<HeightSweepPoint>>> points(num_points);
  ThreadPool::Shared().ParallelFor(
      num_points, options.pipeline.num_threads, [&](size_t height) {
        PipelineOptions pipeline_options = options.pipeline;
        pipeline_options.height = static_cast<int>(height);
        Result<PipelineRunResult> run =
            RunPipeline(dataset, prototype, pipeline_options);
        if (!run.ok()) {
          points[height].emplace(run.status());
          return;
        }
        HeightSweepPoint point;
        point.height = static_cast<int>(height);
        point.num_regions = run->final_model.eval.num_neighborhoods;
        point.train_ence = run->final_model.eval.train_ence;
        point.test_ence = run->final_model.eval.test_ence;
        point.test_accuracy = run->final_model.eval.test_accuracy;
        points[height].emplace(point);
      });

  HeightSelectionResult result;
  for (int height = 0; height <= options.max_height; ++height) {
    Result<HeightSweepPoint>& point_result =
        *points[static_cast<size_t>(height)];
    if (!point_result.ok()) return point_result.status();
    const HeightSweepPoint& point = *point_result;
    result.sweep.push_back(point);

    if (point.train_ence <= options.ence_budget) {
      result.selected_height = height;
      result.budget_met = true;
    }
  }
  return result;
}

}  // namespace fairidx
