#include "core/pipeline.h"

#include <chrono>

#include "index/region_merging.h"

namespace fairidx {

const char* PartitionAlgorithmName(PartitionAlgorithm algorithm) {
  switch (algorithm) {
    case PartitionAlgorithm::kMedianKdTree:
      return "median_kd_tree";
    case PartitionAlgorithm::kFairKdTree:
      return "fair_kd_tree";
    case PartitionAlgorithm::kIterativeFairKdTree:
      return "iterative_fair_kd_tree";
    case PartitionAlgorithm::kMultiObjectiveFairKdTree:
      return "multi_objective_fair_kd_tree";
    case PartitionAlgorithm::kUniformGridReweight:
      return "grid_reweighting";
    case PartitionAlgorithm::kZipCodes:
      return "zip_codes";
    case PartitionAlgorithm::kFairQuadtree:
      return "fair_quadtree";
    case PartitionAlgorithm::kStrSlabs:
      return "str_slabs";
  }
  return "unknown";
}

Result<PartitionAlgorithm> ParsePartitionAlgorithm(const std::string& name) {
  // Round-trips through PartitionAlgorithmName so the two can never drift:
  // a new enum value is parseable the moment it prints.
  std::string known;
  for (PartitionAlgorithm algorithm : AllPartitionAlgorithms()) {
    if (name == PartitionAlgorithmName(algorithm)) return algorithm;
    if (!known.empty()) known += ", ";
    known += PartitionAlgorithmName(algorithm);
  }
  return InvalidArgumentError("unknown algorithm '" + name +
                              "' (expected one of: " + known + ")");
}

std::vector<PartitionAlgorithm> AllPartitionAlgorithms() {
  return {PartitionAlgorithm::kMedianKdTree,
          PartitionAlgorithm::kFairKdTree,
          PartitionAlgorithm::kIterativeFairKdTree,
          PartitionAlgorithm::kMultiObjectiveFairKdTree,
          PartitionAlgorithm::kUniformGridReweight,
          PartitionAlgorithm::kZipCodes,
          PartitionAlgorithm::kFairQuadtree,
          PartitionAlgorithm::kStrSlabs};
}

Result<TrainedEvaluation> TrainOnBaseGrid(const Dataset& dataset,
                                          const TrainTestSplit& split,
                                          const Classifier& prototype,
                                          const EvalOptions& options) {
  Dataset working = dataset;
  FAIRIDX_RETURN_IF_ERROR(working.SetNeighborhoods(working.base_cells()));
  return TrainAndEvaluate(working, split, prototype, options);
}

PartitionerBuildOptions ToPartitionerBuildOptions(
    const PipelineOptions& options) {
  PartitionerBuildOptions build;
  build.height = options.height;
  build.task = options.task;
  build.encoding = options.encoding;
  build.split_objective = options.split_objective;
  build.axis_policy = options.axis_policy;
  build.split_early_stop = options.split_early_stop;
  build.multi_objective_alphas = options.multi_objective_alphas;
  build.multi_objective_eq9_weighting =
      options.multi_objective_eq9_weighting;
  build.num_threads = options.num_threads;
  return build;
}

PartitionerContext MakePipelinePartitionerContext(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const PartitionerBuildOptions& options) {
  // The stage-1 score pass of Fig. 2: train once on the base grid (cell id
  // as the neighborhood feature) and hand every record's confidence score
  // to the partitioner.
  PartitionerContext::InitialScoreFn score_fn =
      [](const Dataset& data, const TrainTestSplit& data_split,
         const Classifier& proto,
         const PartitionerBuildOptions& build_options)
      -> Result<std::vector<double>> {
    EvalOptions eval_options;
    eval_options.task = build_options.task;
    eval_options.encoding = build_options.encoding;
    FAIRIDX_ASSIGN_OR_RETURN(
        TrainedEvaluation initial,
        TrainOnBaseGrid(data, data_split, proto, eval_options));
    return std::move(initial.scores);
  };
  return PartitionerContext(dataset, split, &prototype, options,
                            std::move(score_fn));
}

Result<PipelineRunResult> RunPipeline(const Dataset& dataset,
                                      const Classifier& prototype,
                                      const PipelineOptions& options) {
  if (options.task < 0 || options.task >= dataset.num_tasks()) {
    return InvalidArgumentError("RunPipeline: invalid task");
  }
  if (options.height < 0) {
    return InvalidArgumentError("RunPipeline: height must be >= 0");
  }
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<Partitioner> partitioner,
      PartitionerRegistry::Global().Create(
          PartitionAlgorithmName(options.algorithm)));

  // Capability-driven preconditions (was a hard-coded per-algorithm
  // switch).
  const PartitionerCapabilities caps = partitioner->capabilities();
  if (caps.needs_zip_codes && !dataset.has_zip_codes()) {
    return FailedPreconditionError(
        "RunPipeline: zip-code baseline needs a dataset with zip codes");
  }
  if (caps.needs_multi_task && dataset.num_tasks() < 2) {
    return FailedPreconditionError(
        "RunPipeline: multi-objective needs >= 2 tasks");
  }

  PipelineRunResult out;
  Rng split_rng(options.split_seed);
  FAIRIDX_ASSIGN_OR_RETURN(
      out.split, MakeStratifiedSplit(dataset.labels(options.task),
                                     options.test_fraction, split_rng));

  Dataset working = dataset;

  EvalOptions eval_options;
  eval_options.task = options.task;
  eval_options.encoding = options.encoding;

  const auto partition_start = std::chrono::steady_clock::now();

  // Stage 1+2: initial scores (lazily, when the partitioner asks) and the
  // partition build, through the registry.
  PartitionerContext context = MakePipelinePartitionerContext(
      working, out.split, prototype, ToPartitionerBuildOptions(options));
  FAIRIDX_ASSIGN_OR_RETURN(PartitionerOutput built,
                           partitioner->Build(context));
  out.has_cell_partition = built.has_cell_partition;
  out.partition = std::move(built.partition);
  out.partition_stage_fits = built.model_fits;
  eval_options.reweight_by_neighborhood = built.reweight_by_neighborhood;

  // Optional minimum-population post-processing (cell partitions only).
  if (out.has_cell_partition && options.min_region_population > 0.0) {
    RegionMergingOptions merge_options;
    merge_options.min_population = options.min_region_population;
    FAIRIDX_ASSIGN_OR_RETURN(
        RegionMergingResult merged,
        MergeSmallRegions(working.grid(), out.partition.partition,
                          working.base_cells(), merge_options));
    if (merged.merges > 0) {
      out.partition.partition = std::move(merged.partition);
      // Merged regions are generally not rectangles any more.
      out.partition.regions.clear();
    }
  }

  const auto partition_end = std::chrono::steady_clock::now();
  out.partition_seconds =
      std::chrono::duration<double>(partition_end - partition_start).count();

  // Stage 3: re-district.
  if (out.has_cell_partition) {
    FAIRIDX_RETURN_IF_ERROR(working.SetNeighborhoodsFromCellMap(
        out.partition.partition.cell_to_region()));
  } else {
    FAIRIDX_RETURN_IF_ERROR(working.SetNeighborhoods(working.zip_codes()));
  }
  out.record_neighborhoods = working.neighborhoods();

  // Stage 4: final training + evaluation.
  FAIRIDX_ASSIGN_OR_RETURN(
      out.final_model,
      TrainAndEvaluate(working, out.split, prototype, eval_options));
  return out;
}

}  // namespace fairidx
