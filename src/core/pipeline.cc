#include "core/pipeline.h"

#include <chrono>

#include "core/iterative_fair_kd_tree.h"
#include "core/multi_objective.h"
#include "geo/grid_aggregates.h"
#include "index/fair_kd_tree.h"
#include "index/median_kd_tree.h"
#include "index/quadtree.h"
#include "index/region_merging.h"
#include "index/str_partition.h"
#include "index/uniform_grid.h"

namespace fairidx {

const char* PartitionAlgorithmName(PartitionAlgorithm algorithm) {
  switch (algorithm) {
    case PartitionAlgorithm::kMedianKdTree:
      return "median_kd_tree";
    case PartitionAlgorithm::kFairKdTree:
      return "fair_kd_tree";
    case PartitionAlgorithm::kIterativeFairKdTree:
      return "iterative_fair_kd_tree";
    case PartitionAlgorithm::kMultiObjectiveFairKdTree:
      return "multi_objective_fair_kd_tree";
    case PartitionAlgorithm::kUniformGridReweight:
      return "grid_reweighting";
    case PartitionAlgorithm::kZipCodes:
      return "zip_codes";
    case PartitionAlgorithm::kFairQuadtree:
      return "fair_quadtree";
    case PartitionAlgorithm::kStrSlabs:
      return "str_slabs";
  }
  return "unknown";
}

Result<TrainedEvaluation> TrainOnBaseGrid(const Dataset& dataset,
                                          const TrainTestSplit& split,
                                          const Classifier& prototype,
                                          const EvalOptions& options) {
  Dataset working = dataset;
  FAIRIDX_RETURN_IF_ERROR(working.SetNeighborhoods(working.base_cells()));
  return TrainAndEvaluate(working, split, prototype, options);
}

namespace {

// Builds training-split aggregates from initial base-grid scores.
Result<GridAggregates> TrainAggregates(const Dataset& dataset, int task,
                                       const TrainTestSplit& split,
                                       const std::vector<double>& scores) {
  std::vector<int> cells;
  std::vector<int> labels;
  std::vector<double> train_scores;
  cells.reserve(split.train_indices.size());
  for (size_t i : split.train_indices) {
    cells.push_back(dataset.base_cells()[i]);
    labels.push_back(dataset.labels(task)[i]);
    train_scores.push_back(scores[i]);
  }
  return GridAggregates::Build(dataset.grid(), cells, labels, train_scores);
}

}  // namespace

Result<PipelineRunResult> RunPipeline(const Dataset& dataset,
                                      const Classifier& prototype,
                                      const PipelineOptions& options) {
  if (options.task < 0 || options.task >= dataset.num_tasks()) {
    return InvalidArgumentError("RunPipeline: invalid task");
  }
  if (options.height < 0) {
    return InvalidArgumentError("RunPipeline: height must be >= 0");
  }
  if (options.algorithm == PartitionAlgorithm::kZipCodes &&
      !dataset.has_zip_codes()) {
    return FailedPreconditionError(
        "RunPipeline: zip-code baseline needs a dataset with zip codes");
  }

  PipelineRunResult out;
  Rng split_rng(options.split_seed);
  FAIRIDX_ASSIGN_OR_RETURN(
      out.split, MakeStratifiedSplit(dataset.labels(options.task),
                                     options.test_fraction, split_rng));

  Dataset working = dataset;
  const int target_regions = 1 << std::min(options.height, 30);

  EvalOptions eval_options;
  eval_options.task = options.task;
  eval_options.encoding = options.encoding;

  const auto partition_start = std::chrono::steady_clock::now();

  // Stage 1+2: initial scores (when needed) and the partition build.
  switch (options.algorithm) {
    case PartitionAlgorithm::kMedianKdTree: {
      FAIRIDX_ASSIGN_OR_RETURN(
          GridAggregates aggregates,
          TrainAggregates(working, options.task, out.split,
                          std::vector<double>(working.num_records(), 0.0)));
      FAIRIDX_ASSIGN_OR_RETURN(
          KdTreeResult tree,
          BuildMedianKdTree(working.grid(), aggregates, options.height,
                            options.num_threads));
      out.partition = std::move(tree.result);
      out.has_cell_partition = true;
      break;
    }
    case PartitionAlgorithm::kFairKdTree: {
      FAIRIDX_ASSIGN_OR_RETURN(
          TrainedEvaluation initial,
          TrainOnBaseGrid(working, out.split, prototype, eval_options));
      out.partition_stage_fits = 1;
      FAIRIDX_ASSIGN_OR_RETURN(
          GridAggregates aggregates,
          TrainAggregates(working, options.task, out.split, initial.scores));
      FairKdTreeOptions fair_options;
      fair_options.height = options.height;
      fair_options.objective = options.split_objective;
      fair_options.axis_policy = options.axis_policy;
      fair_options.early_stop_weighted_miscalibration =
          options.split_early_stop;
      fair_options.num_threads = options.num_threads;
      FAIRIDX_ASSIGN_OR_RETURN(
          KdTreeResult tree,
          BuildFairKdTree(working.grid(), aggregates, fair_options));
      out.partition = std::move(tree.result);
      out.has_cell_partition = true;
      break;
    }
    case PartitionAlgorithm::kIterativeFairKdTree: {
      IterativeFairKdTreeOptions iterative_options;
      iterative_options.height = options.height;
      iterative_options.task = options.task;
      iterative_options.encoding = options.encoding;
      iterative_options.objective = options.split_objective;
      iterative_options.axis_policy = options.axis_policy;
      iterative_options.num_threads = options.num_threads;
      FAIRIDX_ASSIGN_OR_RETURN(
          IterativeFairKdTreeResult iterative,
          BuildIterativeFairKdTree(working, out.split, prototype,
                                   iterative_options));
      out.partition = std::move(iterative.partition);
      out.partition_stage_fits = iterative.retrain_count;
      out.has_cell_partition = true;
      break;
    }
    case PartitionAlgorithm::kMultiObjectiveFairKdTree: {
      if (working.num_tasks() < 2) {
        return FailedPreconditionError(
            "RunPipeline: multi-objective needs >= 2 tasks");
      }
      MultiObjectiveOptions multi_options;
      multi_options.height = options.height;
      multi_options.alphas = options.multi_objective_alphas;
      multi_options.encoding = options.encoding;
      multi_options.use_eq9_weighting = options.multi_objective_eq9_weighting;
      FAIRIDX_ASSIGN_OR_RETURN(
          MultiObjectiveResult multi,
          BuildMultiObjectiveFairKdTree(working, out.split, prototype,
                                        multi_options));
      out.partition = std::move(multi.partition);
      out.partition_stage_fits = working.num_tasks();
      out.has_cell_partition = true;
      break;
    }
    case PartitionAlgorithm::kUniformGridReweight: {
      FAIRIDX_ASSIGN_OR_RETURN(
          PartitionResult uniform,
          BuildUniformGridPartition(working.grid(), options.height));
      out.partition = std::move(uniform);
      out.has_cell_partition = true;
      // The baseline's mitigation acts at training time, not indexing time.
      eval_options.reweight_by_neighborhood = true;
      break;
    }
    case PartitionAlgorithm::kZipCodes: {
      out.has_cell_partition = false;
      break;
    }
    case PartitionAlgorithm::kFairQuadtree: {
      FAIRIDX_ASSIGN_OR_RETURN(
          TrainedEvaluation initial,
          TrainOnBaseGrid(working, out.split, prototype, eval_options));
      out.partition_stage_fits = 1;
      FAIRIDX_ASSIGN_OR_RETURN(
          GridAggregates aggregates,
          TrainAggregates(working, options.task, out.split, initial.scores));
      FairQuadtreeOptions quad_options;
      quad_options.target_regions = target_regions;
      FAIRIDX_ASSIGN_OR_RETURN(
          PartitionResult quad,
          BuildFairQuadtree(working.grid(), aggregates, quad_options));
      out.partition = std::move(quad);
      out.has_cell_partition = true;
      break;
    }
    case PartitionAlgorithm::kStrSlabs: {
      FAIRIDX_ASSIGN_OR_RETURN(
          GridAggregates aggregates,
          TrainAggregates(working, options.task, out.split,
                          std::vector<double>(working.num_records(), 0.0)));
      FAIRIDX_ASSIGN_OR_RETURN(
          PartitionResult str,
          BuildStrPartition(working.grid(), aggregates, target_regions));
      out.partition = std::move(str);
      out.has_cell_partition = true;
      break;
    }
  }

  // Optional minimum-population post-processing (cell partitions only).
  if (out.has_cell_partition && options.min_region_population > 0.0) {
    RegionMergingOptions merge_options;
    merge_options.min_population = options.min_region_population;
    FAIRIDX_ASSIGN_OR_RETURN(
        RegionMergingResult merged,
        MergeSmallRegions(working.grid(), out.partition.partition,
                          working.base_cells(), merge_options));
    if (merged.merges > 0) {
      out.partition.partition = std::move(merged.partition);
      // Merged regions are generally not rectangles any more.
      out.partition.regions.clear();
    }
  }

  const auto partition_end = std::chrono::steady_clock::now();
  out.partition_seconds =
      std::chrono::duration<double>(partition_end - partition_start).count();

  // Stage 3: re-district.
  if (out.has_cell_partition) {
    FAIRIDX_RETURN_IF_ERROR(working.SetNeighborhoodsFromCellMap(
        out.partition.partition.cell_to_region()));
  } else {
    FAIRIDX_RETURN_IF_ERROR(working.SetNeighborhoods(working.zip_codes()));
  }
  out.record_neighborhoods = working.neighborhoods();

  // Stage 4: final training + evaluation.
  FAIRIDX_ASSIGN_OR_RETURN(
      out.final_model,
      TrainAndEvaluate(working, out.split, prototype, eval_options));
  return out;
}

}  // namespace fairidx
