#include "core/multi_objective.h"

#include <cmath>
#include <utility>

#include "common/thread_pool.h"
#include "fairness/region_metrics.h"
#include "geo/grid_aggregates.h"

namespace fairidx {
namespace {

// Resolves the (tasks, alphas) configuration, applying defaults.
Status ResolveTasksAndAlphas(const Dataset& dataset,
                             const MultiObjectiveOptions& options,
                             std::vector<int>* tasks,
                             std::vector<double>* alphas) {
  *tasks = options.tasks;
  if (tasks->empty()) {
    for (int t = 0; t < dataset.num_tasks(); ++t) tasks->push_back(t);
  }
  for (int t : *tasks) {
    if (t < 0 || t >= dataset.num_tasks()) {
      return InvalidArgumentError("multi-objective: invalid task index");
    }
  }
  *alphas = options.alphas;
  if (alphas->empty()) {
    alphas->assign(tasks->size(), 1.0 / static_cast<double>(tasks->size()));
  }
  if (alphas->size() != tasks->size()) {
    return InvalidArgumentError("multi-objective: alphas/tasks size mismatch");
  }
  double total = 0.0;
  for (double a : *alphas) {
    if (a < 0.0 || a > 1.0) {
      return InvalidArgumentError("multi-objective: alphas must be in [0,1]");
    }
    total += a;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return InvalidArgumentError("multi-objective: alphas must sum to 1");
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<double>> ComputeMultiObjectiveResiduals(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const MultiObjectiveOptions& options) {
  std::vector<int> tasks;
  std::vector<double> alphas;
  FAIRIDX_RETURN_IF_ERROR(
      ResolveTasksAndAlphas(dataset, options, &tasks, &alphas));
  if (split.train_indices.empty()) {
    return InvalidArgumentError("multi-objective: empty training split");
  }

  // Per-task fits are independent: each pool task assembles its own design
  // matrix, fits a clone and scores every record into its slot. The
  // alpha-combination below runs sequentially in task order, so v_tot is
  // bit-identical at any thread count.
  const size_t num_tasks = tasks.size();
  std::vector<std::vector<double>> task_scores(num_tasks);
  std::vector<Status> task_status(num_tasks, Status::Ok());
  ThreadPool::Shared().ParallelFor(
      num_tasks, options.num_threads, [&](size_t k) {
        const int task = tasks[k];
        DesignMatrixOptions design_options;
        design_options.encoding = options.encoding;
        design_options.task = task;
        design_options.encoding_fit_indices = split.train_indices;
        Result<Matrix> design = dataset.DesignMatrix(design_options);
        if (!design.ok()) {
          task_status[k] = design.status();
          return;
        }
        const Matrix train_design = design->SelectRows(split.train_indices);
        std::vector<int> train_labels;
        train_labels.reserve(split.train_indices.size());
        for (size_t i : split.train_indices) {
          train_labels.push_back(dataset.labels(task)[i]);
        }
        std::unique_ptr<Classifier> model = prototype.Clone();
        if (Status fit = model->Fit(train_design, train_labels, nullptr);
            !fit.ok()) {
          task_status[k] = std::move(fit);
          return;
        }
        Result<std::vector<double>> scores = model->PredictScores(*design);
        if (!scores.ok()) {
          task_status[k] = scores.status();
          return;
        }
        task_scores[k] = std::move(*scores);
      });
  for (Status& status : task_status) {
    FAIRIDX_RETURN_IF_ERROR(std::move(status));
  }

  std::vector<double> residuals(dataset.num_records(), 0.0);
  for (size_t k = 0; k < num_tasks; ++k) {
    const int task = tasks[k];
    const std::vector<double>& scores = task_scores[k];
    for (size_t i = 0; i < residuals.size(); ++i) {
      residuals[i] += alphas[k] * (scores[i] - dataset.labels(task)[i]);
    }
  }
  return residuals;
}

Result<MultiObjectiveResult> BuildMultiObjectiveFairKdTree(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const MultiObjectiveOptions& options) {
  if (options.height < 0) {
    return InvalidArgumentError("multi-objective: height must be >= 0");
  }
  FAIRIDX_ASSIGN_OR_RETURN(
      std::vector<double> residuals,
      ComputeMultiObjectiveResiduals(dataset, split, prototype, options));

  // Aggregates carry the residuals; labels/scores below are placeholders
  // (task 0's) since the residual objectives only read sum_residuals.
  std::vector<int> train_cells;
  std::vector<int> train_labels;
  std::vector<double> train_scores;
  std::vector<double> train_residuals;
  train_cells.reserve(split.train_indices.size());
  for (size_t i : split.train_indices) {
    train_cells.push_back(dataset.base_cells()[i]);
    train_labels.push_back(dataset.labels(0)[i]);
    train_scores.push_back(0.0);
    train_residuals.push_back(residuals[i]);
  }
  FAIRIDX_ASSIGN_OR_RETURN(
      GridAggregates aggregates,
      GridAggregates::Build(dataset.grid(), train_cells, train_labels,
                            train_scores, train_residuals));

  KdTreeOptions tree_options;
  tree_options.height = options.height;
  tree_options.num_threads = options.num_threads;
  tree_options.objective.kind =
      options.use_eq9_weighting ? SplitObjectiveKind::kResidualBalanceEq9
                                : SplitObjectiveKind::kResidualBalanceEq13;
  FAIRIDX_ASSIGN_OR_RETURN(
      KdTreeResult tree,
      BuildKdTreePartition(dataset.grid(), aggregates, tree_options));

  MultiObjectiveResult out;
  out.region_abs_residual_mass =
      RegionAbsResidualMass(aggregates, tree.result.regions);
  out.partition = std::move(tree.result);
  out.residuals = std::move(residuals);
  return out;
}

}  // namespace fairidx
