// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared train-and-evaluate step: fits a classifier on the training split of
// a dataset (whose neighborhood attribute is already set), scores every
// record, and computes the paper's indicators — accuracy, overall
// miscalibration, and ENCE on both splits.

#ifndef FAIRIDX_CORE_EVALUATION_H_
#define FAIRIDX_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/split.h"
#include "ml/classifier.h"

namespace fairidx {

/// Options for one training/evaluation pass.
struct EvalOptions {
  int task = 0;
  NeighborhoodEncoding encoding = NeighborhoodEncoding::kNumericId;
  /// Applies Kamiran-Calders reweighting with the current neighborhoods as
  /// groups when fitting (the reweighting baseline).
  bool reweight_by_neighborhood = false;
};

/// The paper's evaluation indicators for one trained model.
struct EvaluationResult {
  int num_neighborhoods = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  /// Overall |e - o| (Fig. 8b/8c).
  double train_miscalibration = 0.0;
  double test_miscalibration = 0.0;
  /// ENCE over the current neighborhoods (Fig. 7).
  double train_ence = 0.0;
  double test_ence = 0.0;
  /// Normalized importances over design-matrix columns (Fig. 9).
  std::vector<double> feature_importances;
  std::vector<std::string> feature_names;
};

/// Scores plus indicators from one pass.
struct TrainedEvaluation {
  /// Confidence scores for every record (train and test).
  std::vector<double> scores;
  EvaluationResult eval;
};

/// Clones `prototype`, fits it on `split.train_indices`, scores all records,
/// and evaluates. The dataset's current neighborhoods define both the
/// neighborhood feature and the ENCE groups.
Result<TrainedEvaluation> TrainAndEvaluate(const Dataset& dataset,
                                           const TrainTestSplit& split,
                                           const Classifier& prototype,
                                           const EvalOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_EVALUATION_H_
