// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// k-fold cross-validation over the pipeline: the single train/test split
// behind each figure is convenient but noisy at EdGap scale (~1000
// records); CrossValidatePipeline reruns the pipeline with k different
// split seeds and reports mean and standard deviation of every indicator,
// which EXPERIMENTS.md uses to state stability.

#ifndef FAIRIDX_CORE_CROSS_VALIDATION_H_
#define FAIRIDX_CORE_CROSS_VALIDATION_H_

#include <vector>

#include "core/pipeline.h"

namespace fairidx {

/// Mean / standard deviation of one metric across folds.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Aggregated cross-validated indicators.
struct CrossValidationResult {
  int folds = 0;
  MetricSummary train_ence;
  MetricSummary test_ence;
  MetricSummary train_accuracy;
  MetricSummary test_accuracy;
  MetricSummary test_miscalibration;
  /// The per-fold raw evaluations, for custom analysis.
  std::vector<EvaluationResult> fold_evals;
};

/// Runs the pipeline `folds` times with distinct split seeds (derived from
/// options.split_seed) and aggregates. `folds` must be >= 2. With
/// options.num_threads > 1 the folds run concurrently on the shared
/// thread pool (common/thread_pool.h); the result is identical at any
/// thread count.
Result<CrossValidationResult> CrossValidatePipeline(
    const Dataset& dataset, const Classifier& prototype,
    const PipelineOptions& options, int folds);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_CROSS_VALIDATION_H_
