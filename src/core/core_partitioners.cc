// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Registry adapters for the partitioners that train models during the
// build: the Iterative Fair KD-tree (one fit per level, Algorithm 3) and
// the Multi-Objective Fair KD-tree (one fit per task, Section 4.3). They
// live in core/ because they reach above the index layer (datasets,
// classifiers, per-level retraining); index/partitioner.cc pulls them in
// through the RegisterCorePartitioners link hook.

#include <memory>
#include <utility>

#include "core/iterative_fair_kd_tree.h"
#include "core/multi_objective.h"
#include "index/partitioner.h"

namespace fairidx {
namespace {

class IterativeFairKdTreePartitioner : public Partitioner {
 public:
  const char* name() const override { return "iterative_fair_kd_tree"; }
  PartitionerCapabilities capabilities() const override {
    PartitionerCapabilities caps;
    caps.trains_models = true;
    return caps;
  }
  Result<PartitionerOutput> Build(PartitionerContext& context) override {
    if (context.prototype() == nullptr) {
      return FailedPreconditionError(
          "iterative_fair_kd_tree: needs a classifier prototype");
    }
    const PartitionerBuildOptions& options = context.options();
    IterativeFairKdTreeOptions iterative_options;
    iterative_options.height = options.height;
    iterative_options.task = options.task;
    iterative_options.encoding = options.encoding;
    iterative_options.objective = options.split_objective;
    iterative_options.axis_policy = options.axis_policy;
    iterative_options.num_threads = options.num_threads;
    FAIRIDX_ASSIGN_OR_RETURN(
        IterativeFairKdTreeResult iterative,
        BuildIterativeFairKdTree(context.dataset(), context.split(),
                                 *context.prototype(), iterative_options));
    PartitionerOutput out;
    out.partition = std::move(iterative.partition);
    out.model_fits = iterative.retrain_count;
    return out;
  }
};

class MultiObjectivePartitioner : public Partitioner {
 public:
  const char* name() const override {
    return "multi_objective_fair_kd_tree";
  }
  PartitionerCapabilities capabilities() const override {
    PartitionerCapabilities caps;
    caps.trains_models = true;
    caps.needs_multi_task = true;
    return caps;
  }
  Result<PartitionerOutput> Build(PartitionerContext& context) override {
    if (context.prototype() == nullptr) {
      return FailedPreconditionError(
          "multi_objective_fair_kd_tree: needs a classifier prototype");
    }
    if (context.dataset().num_tasks() < 2) {
      return FailedPreconditionError(
          "multi_objective_fair_kd_tree: needs >= 2 tasks");
    }
    const PartitionerBuildOptions& options = context.options();
    MultiObjectiveOptions multi_options;
    multi_options.height = options.height;
    multi_options.alphas = options.multi_objective_alphas;
    multi_options.encoding = options.encoding;
    multi_options.use_eq9_weighting = options.multi_objective_eq9_weighting;
    multi_options.num_threads = options.num_threads;
    FAIRIDX_ASSIGN_OR_RETURN(
        MultiObjectiveResult multi,
        BuildMultiObjectiveFairKdTree(context.dataset(), context.split(),
                                      *context.prototype(), multi_options));
    PartitionerOutput out;
    out.partition = std::move(multi.partition);
    // Defaults balance every task: one model fit each.
    out.model_fits = context.dataset().num_tasks();
    return out;
  }
};

}  // namespace

void RegisterCorePartitioners(PartitionerRegistry& registry) {
  registry.Register("iterative_fair_kd_tree", [] {
    return std::make_unique<IterativeFairKdTreePartitioner>();
  });
  registry.Register("multi_objective_fair_kd_tree", [] {
    return std::make_unique<MultiObjectivePartitioner>();
  });
}

}  // namespace fairidx
