#include "core/cross_validation.h"

#include <cmath>

namespace fairidx {
namespace {

MetricSummary Summarize(const std::vector<double>& values) {
  MetricSummary summary;
  if (values.empty()) return summary;
  for (double v : values) summary.mean += v;
  summary.mean /= static_cast<double>(values.size());
  for (double v : values) {
    summary.stddev += (v - summary.mean) * (v - summary.mean);
  }
  summary.stddev =
      std::sqrt(summary.stddev / static_cast<double>(values.size()));
  return summary;
}

}  // namespace

Result<CrossValidationResult> CrossValidatePipeline(
    const Dataset& dataset, const Classifier& prototype,
    const PipelineOptions& options, int folds) {
  if (folds < 2) {
    return InvalidArgumentError("CrossValidatePipeline: folds must be >= 2");
  }
  CrossValidationResult result;
  result.folds = folds;

  std::vector<double> train_ence;
  std::vector<double> test_ence;
  std::vector<double> train_accuracy;
  std::vector<double> test_accuracy;
  std::vector<double> test_miscalibration;

  for (int fold = 0; fold < folds; ++fold) {
    PipelineOptions fold_options = options;
    // Distinct, deterministic seeds per fold.
    fold_options.split_seed =
        options.split_seed * 1000003ULL + static_cast<uint64_t>(fold);
    FAIRIDX_ASSIGN_OR_RETURN(
        PipelineRunResult run,
        RunPipeline(dataset, prototype, fold_options));
    const EvaluationResult& eval = run.final_model.eval;
    train_ence.push_back(eval.train_ence);
    test_ence.push_back(eval.test_ence);
    train_accuracy.push_back(eval.train_accuracy);
    test_accuracy.push_back(eval.test_accuracy);
    test_miscalibration.push_back(eval.test_miscalibration);
    result.fold_evals.push_back(eval);
  }

  result.train_ence = Summarize(train_ence);
  result.test_ence = Summarize(test_ence);
  result.train_accuracy = Summarize(train_accuracy);
  result.test_accuracy = Summarize(test_accuracy);
  result.test_miscalibration = Summarize(test_miscalibration);
  return result;
}

}  // namespace fairidx
