#include "core/cross_validation.h"

#include <cmath>
#include <optional>

#include "common/thread_pool.h"

namespace fairidx {
namespace {

MetricSummary Summarize(const std::vector<double>& values) {
  MetricSummary summary;
  if (values.empty()) return summary;
  for (double v : values) summary.mean += v;
  summary.mean /= static_cast<double>(values.size());
  for (double v : values) {
    summary.stddev += (v - summary.mean) * (v - summary.mean);
  }
  summary.stddev =
      std::sqrt(summary.stddev / static_cast<double>(values.size()));
  return summary;
}

}  // namespace

Result<CrossValidationResult> CrossValidatePipeline(
    const Dataset& dataset, const Classifier& prototype,
    const PipelineOptions& options, int folds) {
  if (folds < 2) {
    return InvalidArgumentError("CrossValidatePipeline: folds must be >= 2");
  }
  CrossValidationResult result;
  result.folds = folds;

  // Folds are independent pipeline runs; with num_threads > 1 they execute
  // concurrently on the shared pool (the per-fold tree builds submit into
  // the same pool, so total parallelism stays bounded by its workers).
  // Only the per-fold evaluation survives each run — the bulky
  // PipelineRunResult (per-record vectors) dies inside the fold task, so
  // peak memory stays one run per concurrent fold. Slots are aggregated in
  // fold order, so the output is identical at any thread count.
  std::vector<std::optional<Result<EvaluationResult>>> evals(
      static_cast<size_t>(folds));
  ThreadPool::Shared().ParallelFor(
      static_cast<size_t>(folds), options.num_threads, [&](size_t fold) {
        PipelineOptions fold_options = options;
        // Distinct, deterministic seeds per fold.
        fold_options.split_seed =
            options.split_seed * 1000003ULL + static_cast<uint64_t>(fold);
        Result<PipelineRunResult> run =
            RunPipeline(dataset, prototype, fold_options);
        if (run.ok()) {
          evals[fold].emplace(std::move(run->final_model.eval));
        } else {
          evals[fold].emplace(run.status());
        }
      });

  std::vector<double> train_ence;
  std::vector<double> test_ence;
  std::vector<double> train_accuracy;
  std::vector<double> test_accuracy;
  std::vector<double> test_miscalibration;

  for (int fold = 0; fold < folds; ++fold) {
    Result<EvaluationResult>& fold_eval = *evals[static_cast<size_t>(fold)];
    if (!fold_eval.ok()) return fold_eval.status();
    const EvaluationResult& eval = *fold_eval;
    train_ence.push_back(eval.train_ence);
    test_ence.push_back(eval.test_ence);
    train_accuracy.push_back(eval.train_accuracy);
    test_accuracy.push_back(eval.test_accuracy);
    test_miscalibration.push_back(eval.test_miscalibration);
    result.fold_evals.push_back(eval);
  }

  result.train_ence = Summarize(train_ence);
  result.test_ence = Summarize(test_ence);
  result.train_accuracy = Summarize(train_accuracy);
  result.test_accuracy = Summarize(test_accuracy);
  result.test_miscalibration = Summarize(test_miscalibration);
  return result;
}

}  // namespace fairidx
