// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Declarative experiment scenarios: a key = value config-file format plus
// the engine that executes one file as a multi-algorithm x multi-height x
// multi-seed pipeline sweep. `fairidx_cli run scenario.cfg`, the examples
// and CI smoke tests all drive experiments through these structs instead
// of ad-hoc flag plumbing.
//
// File format (one `key = value` per line):
//
//   # comment                       full-line or trailing comments
//   include = base.cfg              splice another file (relative to the
//                                   including file; later keys override)
//   name = paper-sweep              free-form label
//   city = la | houston             synthetic city (ignored when csv set)
//   csv = data/extract.csv          EdGap-style CSV instead of a city
//   classifier = lr | tree | nb
//   algorithms = fair_kd_tree, median_kd_tree     (registry names)
//   heights = 4, 6, 8    or    heights = 4..10    (sweep list / range)
//   seeds = 1, 2, 3                 split seeds (one run per seed)
//   task = 0
//   threads = 2                     sweep + partition parallelism
//   test_fraction = 0.25
//   min_region_population = 0       region-merging post-process
//   workload = pipeline | stream    what each sweep point executes
//            | serve
//   stream_batch = 500              stream: records per ingest batch
//   stream_shards = 4               stream: ShardedDeltaStore shards
//   stream_refine_bound = 0.02      stream: drift bound (< 0: no refine)
//   stream_warmup_pct = 50          stream: warmup prefix percentage
//   stream_seal_records = 0         stream: seal when this many records
//                                   are pending (0: seal every batch)
//   maintain_policy = caller        stream: who runs maintenance.
//                    | auto         caller (default) seals/refines from
//                                   the ingest loop; auto starts the
//                                   service-owned background scheduler
//                                   (service/maintenance_scheduler.h) and
//                                   the loop only ingests
//   seal_interval = 0.05            stream+auto: background wall-clock
//                                   seal cadence in seconds (0: record
//                                   cadence only; with it set and
//                                   stream_seal_records = 0, the wall
//                                   clock alone governs)
//   drift_bound = 0.02              the maintenance-policy spelling of
//                                   stream_refine_bound (same field;
//                                   later key wins, < 0: never refine)
//   wal_dir = /tmp/fairidx-wal      stream: write-ahead log + checkpoint
//                                   directory (empty: durability off).
//                                   Each sweep point logs under its own
//                                   <algorithm>-h<height>-s<seed>/
//                                   subdirectory so points never share a
//                                   log
//   checkpoint_interval = 8         stream+wal: checkpoint every N sealed
//                                   epochs (<= 0: only the initial one)
//   full_snapshot_interval = 1      stream+wal: every Nth checkpoint is a
//                                   full snapshot; the rest are delta
//                                   checkpoints carrying only the cells
//                                   dirtied since the previous one
//                                   (<= 1: every checkpoint is full)
//   fsync = batch                   stream+wal: none | batch | always
//                                   (see service/wal.h for the window
//                                   each mode leaves open)
//   retain_epochs = 0               stream: after each maintenance pass
//                                   keep only the newest N sealed
//                                   snapshots (+ reader-pinned ones);
//                                   0 keeps the full history
//   serve_readers = 2               serve: concurrent worker threads
//                                   issuing mixed lookup/ingest traffic
//                                   against the live service
//   serve_lookups = 50000           serve: lookup points per worker
//   serve_batch = 64                serve: points per LookupMany call
//                                   (one latency sample per call)
//   serve_read_pct = 90             serve: percent of worker operations
//                                   that are lookup batches; the rest
//                                   ingest the stream tail (always fully
//                                   drained, whatever the coin flips)
//   serve_zipf = 0.99               serve: Zipf exponent for hot-cell
//                                   skew in the lookup points (0 draws
//                                   cells uniformly)
//   drift = none | hotspot          serving workloads: deterministic
//         | flash_crowd             drift generator for the ingest tail.
//                                   hotspot sweeps arrivals across the
//                                   grid column by column (a moving hot
//                                   zone); flash_crowd pulls the hot
//                                   column band's records into one
//                                   contiguous burst. Both are pure
//                                   permutations of the tail — the
//                                   record multiset is unchanged
//   drift_hot_pct = 20              hotspot: percent of the stream each
//                                   sweep band occupies; flash_crowd:
//                                   percent of grid columns in the hot
//                                   band
//   drift_window_pct = 50           flash_crowd: how far into the tail
//                                   (percent) the burst lands
//   tenant.<name>.<key> = ...       workload = multi_tenant: per-tenant
//                                   override sections (see
//                                   TenantScenarioKeyNames() and the
//                                   reference doc); every tenant starts
//                                   from the top-level keys and
//                                   overrides what it names
//
// `workload = multi_tenant` hosts every `tenant.<name>.*` section in ONE
// TenantRegistry (service/tenant_registry.h): per-tenant grids, stores,
// partitions and WAL namespaces under <wal_dir>/<point>/<tenant>/, one
// shared round-robin maintenance thread, one worker thread per tenant
// driving a serve-style closed loop (a tenant with lookups = 0 ingests
// flat out — the noisy neighbor). Rows report per-tenant p50/p99 lookup
// latency and ingest throughput, so cross-tenant interference is read
// straight off the table. With wal_dir set the point recovers-or-creates
// per tenant: a corrupt tenant comes back degraded (its row says so)
// while the others recover bit-identically.
//
// Unknown keys are errors (typos should not silently no-op). With the
// default `workload = pipeline`, every run in the expansion is one
// RunPipeline call; `workload = stream` instead drives each sweep point
// through the concurrent serving layer (service/fair_index_service.h):
// warmup build, batched ingest, epoch seals and drift-bounded refines.
// `workload = serve` layers the read path on top of stream: after the
// warmup build, serve_readers worker threads run a closed-loop mix of
// batched point lookups (FairIndexService::LookupMany against the
// published PointLookupIndex snapshot) and tail ingest while the
// service's background scheduler seals and refines — it requires
// maintain_policy = auto — and the row reports p50/p95/p99 LookupMany
// latency plus aggregate lookup QPS (the first 10% of each worker's
// lookup calls are treated as warmup and excluded from the percentiles).
// Independent sweep points execute on the shared ThreadPool (up to
// `threads` at once); rows always come back in height-major,
// algorithm-minor, seed-innermost order, bit-identical at any thread
// count — EXCEPT under `maintain_policy = auto` (and therefore under
// every serve run), where epoch/resplit counts (and hence final_ence,
// and all serve latency/QPS numbers) depend on background-thread timing
// by design: the scenario then exercises the hands-off serving story,
// not a reproducible measurement. Serve record and lookup counts stay
// deterministic.

#ifndef FAIRIDX_CORE_SCENARIO_H_
#define FAIRIDX_CORE_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/experiment_config.h"
#include "core/pipeline.h"
#include "data/dataset.h"

namespace fairidx {

/// What one sweep point executes.
enum class ScenarioWorkload {
  /// The batch pipeline: one RunPipeline per sweep point.
  kPipeline,
  /// The serving layer: warmup build + batched ingest through a
  /// FairIndexService per sweep point.
  kStream,
  /// The read path: warmup build, then concurrent worker threads mixing
  /// batched point lookups with tail ingest against the live service
  /// while the background scheduler maintains (requires maintain_policy
  /// = auto). Reports lookup latency percentiles and QPS.
  kServe,
  /// Multi-tenant serving: every tenant.<name>.* section becomes one
  /// tenant of a shared TenantRegistry (per-tenant grid, store,
  /// partition, WAL namespace and maintenance policy; one shared
  /// round-robin scheduler thread). One worker per tenant runs a
  /// serve-style closed loop; lookups = 0 makes that tenant a pure
  /// ingester (the noisy neighbor). Requires maintain_policy = auto.
  kMultiTenant,
};

/// Who runs stream-workload maintenance.
enum class ScenarioMaintainPolicy {
  /// The ingest loop seals/refines (the pre-scheduler behavior).
  kCaller,
  /// The service-owned background scheduler seals/refines; the loop only
  /// ingests.
  kAuto,
};

/// One tenant's override section (workload = multi_tenant): every field
/// left unset inherits the top-level key of the same meaning, so a
/// scenario states the fleet-wide defaults once and each tenant only
/// what makes it different. Parsed from `tenant.<name>.<key> = value`
/// lines; sections are kept in first-appearance order.
struct ScenarioTenantConfig {
  /// Unique tenant name ([A-Za-z0-9_-]+; it names the tenant's WAL
  /// namespace directory).
  std::string name;
  /// Overrides `city` (the tenant then generates its own dataset and
  /// grid shape instead of sharing the scenario's).
  std::optional<std::string> city;
  /// Overrides the sweep point's algorithm for this tenant.
  std::optional<std::string> algorithm;
  /// Overrides the sweep point's tree height.
  std::optional<int> height;
  /// Overrides the sweep point's split seed.
  std::optional<uint64_t> seed;
  /// Overrides stream_batch / stream_shards / stream_warmup_pct /
  /// stream_seal_records for this tenant.
  std::optional<int> batch;
  std::optional<int> shards;
  std::optional<int> warmup_pct;
  std::optional<long long> seal_records;
  /// Overrides seal_interval (per-tenant wall-clock seal cadence).
  std::optional<double> seal_interval;
  /// Overrides drift_bound / stream_refine_bound (< 0: never refine).
  std::optional<double> drift_bound;
  /// Overrides retain_epochs (per-tenant snapshot retention).
  std::optional<int> retain_epochs;
  /// Overrides serve_lookups; 0 is allowed HERE and makes the tenant a
  /// pure ingester (the noisy neighbor — no lookups, full-rate writes).
  std::optional<long long> lookups;
  /// Overrides serve_read_pct for this tenant's worker.
  std::optional<int> read_pct;
  /// Overrides serve_zipf.
  std::optional<double> zipf;
  /// Overrides drift (none | hotspot | flash_crowd).
  std::optional<std::string> drift;
  /// Overrides fsync / checkpoint_interval / full_snapshot_interval
  /// (per-tenant durability, inside the tenant's own namespace).
  std::optional<std::string> fsync;
  std::optional<long long> checkpoint_interval;
  std::optional<long long> full_snapshot_interval;
};

/// One parsed scenario file (after include resolution).
struct ScenarioConfig {
  std::string name;
  std::string city = "la";
  /// When non-empty, load this CSV instead of generating `city`.
  std::string csv;
  ClassifierKind classifier = ClassifierKind::kLogisticRegression;
  std::vector<PartitionAlgorithm> algorithms = {
      PartitionAlgorithm::kFairKdTree};
  std::vector<int> heights = {6};
  std::vector<uint64_t> seeds = {20240601};
  int task = 0;
  int threads = 1;
  double test_fraction = 0.25;
  double min_region_population = 0.0;
  ScenarioWorkload workload = ScenarioWorkload::kPipeline;
  /// Streaming keys (used only when workload == kStream).
  int stream_batch = 500;
  int stream_shards = 1;
  /// Drift bound for incremental maintenance; < 0 streams without
  /// refining (the warmup partition stays fixed).
  double stream_refine_bound = 0.02;
  int stream_warmup_pct = 50;
  /// Seal (and maybe refine) once this many records are pending; 0 seals
  /// after every batch.
  long long stream_seal_records = 0;
  /// Caller-driven vs background maintenance (stream workload only).
  ScenarioMaintainPolicy maintain_policy = ScenarioMaintainPolicy::kCaller;
  /// Background wall-clock seal cadence in seconds (maintain_policy =
  /// auto only; 0 leaves only the record-count cadence).
  double seal_interval = 0.0;
  /// Durability root directory (stream workload only; empty disables the
  /// WAL and checkpoints). Each sweep point uses its own subdirectory.
  std::string wal_dir;
  /// Checkpoint every this many sealed epochs (<= 0: only at create).
  long long checkpoint_interval = 8;
  /// Every Nth checkpoint is a full snapshot, the rest are delta
  /// checkpoints (<= 1: all full; see DurabilityOptions).
  long long full_snapshot_interval = 1;
  /// WAL fsync mode: "none" | "batch" | "always".
  std::string fsync = "batch";
  /// Sealed-snapshot history bound applied after each maintenance pass
  /// (0 disables retention).
  int retain_epochs = 0;
  /// Serving keys (used only when workload == kServe, which also uses
  /// the stream_* ingest keys and requires maintain_policy = auto).
  /// Concurrent worker threads issuing mixed lookup/ingest traffic.
  int serve_readers = 2;
  /// Lookup points per worker thread.
  long long serve_lookups = 50000;
  /// Points per LookupMany call (one latency sample per call).
  int serve_batch = 64;
  /// Percent of worker operations that are lookup batches (the rest
  /// ingest the stream tail; leftovers drain after the lookups finish).
  int serve_read_pct = 90;
  /// Zipf exponent for hot-cell skew in lookup points (0 = uniform).
  double serve_zipf = 0.99;
  /// Drift generator for the serving-workload ingest tail: "none" keeps
  /// arrival order, "hotspot" sweeps arrivals across the grid column by
  /// column, "flash_crowd" pulls the hot column band into one
  /// contiguous burst. Pure permutations of the tail (the record
  /// multiset is unchanged); see ScenarioDriftTailOrder.
  std::string drift = "none";
  /// hotspot: percent of the stream each sweep band occupies;
  /// flash_crowd: percent of grid columns in the hot band.
  int drift_hot_pct = 20;
  /// flash_crowd: how far into the tail (percent) the burst lands.
  int drift_window_pct = 50;
  /// Tenant sections (workload = multi_tenant), in first-appearance
  /// order.
  std::vector<ScenarioTenantConfig> tenants;
};

/// Every config key the scenario parser accepts, including aliases, in
/// the parser's own order. docs/scenario_reference.md documents exactly
/// this list; tests/serve_scenario_test.cc enforces that both the doc
/// table and the parser's accepted set match it, so neither can rot.
std::vector<std::string> ScenarioKeyNames();

/// The per-tenant sub-keys the parser accepts inside a
/// `tenant.<name>.<key>` section, spelled the way the reference doc
/// lists them (`tenant.<name>.city`, ...), in the parser's own order.
/// The doc table is test-enforced against ScenarioKeyNames() +
/// TenantScenarioKeyNames() concatenated.
std::vector<std::string> TenantScenarioKeyNames();

/// The deterministic tail permutation a drift generator applies:
/// absolute indices into `cell_ids` covering exactly [warmup, size), in
/// emission order. `drift` must be "hotspot" or "flash_crowd"
/// (validated at parse time); both are stable, so records within one
/// band keep their arrival order and the returned order is a pure
/// function of (drift, hot_pct, window_pct, grid shape, cell ids).
std::vector<size_t> ScenarioDriftTailOrder(const std::string& drift,
                                           int hot_pct, int window_pct,
                                           const Grid& grid,
                                           const std::vector<int>& cell_ids,
                                           size_t warmup);

/// One point of the expanded sweep.
struct ScenarioRun {
  PartitionAlgorithm algorithm = PartitionAlgorithm::kFairKdTree;
  int height = 6;
  uint64_t seed = 20240601;
};

/// Parses scenario text. `include_dir` resolves relative include paths
/// (pass the file's directory; "" means the working directory).
Result<ScenarioConfig> ParseScenarioText(const std::string& text,
                                         const std::string& include_dir);

/// Loads and parses a scenario file (includes resolve relative to it).
Result<ScenarioConfig> LoadScenarioFile(const std::string& path);

/// The cross product algorithms x heights x seeds, height-major.
std::vector<ScenarioRun> ExpandScenario(const ScenarioConfig& config);

/// Loads the dataset a scenario names (CSV when set, city otherwise).
Result<Dataset> LoadScenarioDataset(const ScenarioConfig& config);

/// One sweep point's results.
struct ScenarioRow {
  ScenarioRun run;
  int regions = 0;
  double train_ence = 0.0;
  double test_ence = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double test_miscalibration = 0.0;
  double partition_seconds = 0.0;
  int model_fits = 0;
};

/// One streaming sweep point's results (workload = stream).
struct ScenarioStreamRow {
  ScenarioRun run;
  /// Final published partition size.
  int regions = 0;
  /// Records streamed (warmup + ingested).
  long long records = 0;
  /// Sealed epochs over the stream.
  long long epochs = 0;
  /// Subtree re-splits published by maintenance.
  long long resplits = 0;
  /// Partition publications that went out via an O(changed area)
  /// cell-map patch vs. a full O(grid) rebuild.
  long long published_patched = 0;
  long long published_fallback = 0;
  /// Region ENCE of the final partition on the final sealed epoch.
  double final_ence = 0.0;
  /// Wall-clock seconds for the whole stream (excl. the one model fit).
  double stream_seconds = 0.0;
};

/// One serving sweep point's results (workload = serve). Latency and
/// QPS numbers are timing-dependent by design (see the header comment);
/// `records` and `lookups` are deterministic.
struct ScenarioServeRow {
  ScenarioRun run;
  /// Final published partition size.
  int regions = 0;
  /// Records streamed (warmup + everything the workers ingested).
  long long records = 0;
  /// Sealed epochs over the run.
  long long epochs = 0;
  /// Subtree re-splits published by background maintenance.
  long long resplits = 0;
  /// Lookup points answered across all workers (warmup calls included).
  long long lookups = 0;
  /// lookups / serve_seconds.
  double read_qps = 0.0;
  /// LookupMany call latency percentiles in microseconds, over the
  /// steady-state window (first 10% of each worker's calls excluded).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Wall-clock seconds of the mixed-traffic phase (excludes the model
  /// fit, warmup build and workload pre-generation).
  double serve_seconds = 0.0;
  /// Worst single publication swap over the run (max wall-clock micros
  /// inside PublishMaintainedLocked — the reader-visible publish stall).
  long long publish_stall_us = 0;
  /// Worst single checkpoint write over the run (0 without a WAL).
  long long checkpoint_stall_us = 0;
  /// Region ENCE of the final partition on the final sealed epoch.
  double final_ence = 0.0;
};

/// One tenant's results within one multi-tenant sweep point (workload =
/// multi_tenant). Latency/throughput numbers are timing-dependent by
/// design; `records` and `lookups` are deterministic. A degraded tenant
/// (failed recovery) reports its name and state with zeroed counters.
struct ScenarioTenantRow {
  ScenarioRun run;
  std::string tenant;
  /// "serving" (created fresh), "recovered" (rebuilt from its WAL/
  /// checkpoint namespace), or "degraded" (recovery failed; the other
  /// tenants keep serving).
  std::string state;
  /// Final published partition size.
  int regions = 0;
  /// Records in the tenant's store (warmup + ingested).
  long long records = 0;
  /// Sealed epochs / published subtree re-splits for this tenant.
  long long epochs = 0;
  long long resplits = 0;
  /// Lookup points answered by this tenant's worker (0 for a pure
  /// ingester).
  long long lookups = 0;
  /// lookups / the worker's wall-clock seconds.
  double read_qps = 0.0;
  /// LookupMany latency percentiles (steady-state window, first 10% of
  /// calls excluded) — the cross-tenant interference readout.
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Tail records ingested / the worker's wall-clock seconds.
  double ingest_rps = 0.0;
  /// Region ENCE of the final partition on the final sealed epoch.
  double final_ence = 0.0;
};

/// A finished scenario execution. `rows` is filled for the pipeline
/// workload, `stream_rows` for the stream workload, `serve_rows` for the
/// serve workload, `tenant_rows` for multi_tenant (grouped by sweep
/// point, tenants in section order within each point); all in sweep
/// order.
struct ScenarioReport {
  ScenarioWorkload workload = ScenarioWorkload::kPipeline;
  std::vector<ScenarioRow> rows;
  std::vector<ScenarioStreamRow> stream_rows;
  std::vector<ScenarioServeRow> serve_rows;
  std::vector<ScenarioTenantRow> tenant_rows;
};

/// Executes every expanded run against `dataset`, dispatching on
/// config.workload. Runs that fail on a per-algorithm precondition the
/// config could not know about (e.g. multi-objective on a 1-task CSV, a
/// non-refinable structure under workload = stream) fail the whole
/// scenario — list only applicable algorithms. Independent sweep points
/// run on the shared ThreadPool, at most config.threads at once; the
/// report is bit-identical at any thread count.
Result<ScenarioReport> RunScenario(const ScenarioConfig& config,
                                   const Dataset& dataset);

/// Convenience: LoadScenarioDataset + RunScenario.
Result<ScenarioReport> RunScenario(const ScenarioConfig& config);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_SCENARIO_H_
