// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Declarative experiment scenarios: a key = value config-file format plus
// the engine that executes one file as a multi-algorithm x multi-height x
// multi-seed pipeline sweep. `fairidx_cli run scenario.cfg`, the examples
// and CI smoke tests all drive experiments through these structs instead
// of ad-hoc flag plumbing.
//
// File format (one `key = value` per line):
//
//   # comment                       full-line or trailing comments
//   include = base.cfg              splice another file (relative to the
//                                   including file; later keys override)
//   name = paper-sweep              free-form label
//   city = la | houston             synthetic city (ignored when csv set)
//   csv = data/extract.csv          EdGap-style CSV instead of a city
//   classifier = lr | tree | nb
//   algorithms = fair_kd_tree, median_kd_tree     (registry names)
//   heights = 4, 6, 8    or    heights = 4..10    (sweep list / range)
//   seeds = 1, 2, 3                 split seeds (one run per seed)
//   task = 0
//   threads = 2                     sweep + partition parallelism
//   test_fraction = 0.25
//   min_region_population = 0       region-merging post-process
//   workload = pipeline | stream    what each sweep point executes
//            | serve
//   stream_batch = 500              stream: records per ingest batch
//   stream_shards = 4               stream: ShardedDeltaStore shards
//   stream_refine_bound = 0.02      stream: drift bound (< 0: no refine)
//   stream_warmup_pct = 50          stream: warmup prefix percentage
//   stream_seal_records = 0         stream: seal when this many records
//                                   are pending (0: seal every batch)
//   maintain_policy = caller        stream: who runs maintenance.
//                    | auto         caller (default) seals/refines from
//                                   the ingest loop; auto starts the
//                                   service-owned background scheduler
//                                   (service/maintenance_scheduler.h) and
//                                   the loop only ingests
//   seal_interval = 0.05            stream+auto: background wall-clock
//                                   seal cadence in seconds (0: record
//                                   cadence only; with it set and
//                                   stream_seal_records = 0, the wall
//                                   clock alone governs)
//   drift_bound = 0.02              the maintenance-policy spelling of
//                                   stream_refine_bound (same field;
//                                   later key wins, < 0: never refine)
//   wal_dir = /tmp/fairidx-wal      stream: write-ahead log + checkpoint
//                                   directory (empty: durability off).
//                                   Each sweep point logs under its own
//                                   <algorithm>-h<height>-s<seed>/
//                                   subdirectory so points never share a
//                                   log
//   checkpoint_interval = 8         stream+wal: checkpoint every N sealed
//                                   epochs (<= 0: only the initial one)
//   full_snapshot_interval = 1      stream+wal: every Nth checkpoint is a
//                                   full snapshot; the rest are delta
//                                   checkpoints carrying only the cells
//                                   dirtied since the previous one
//                                   (<= 1: every checkpoint is full)
//   fsync = batch                   stream+wal: none | batch | always
//                                   (see service/wal.h for the window
//                                   each mode leaves open)
//   retain_epochs = 0               stream: after each maintenance pass
//                                   keep only the newest N sealed
//                                   snapshots (+ reader-pinned ones);
//                                   0 keeps the full history
//   serve_readers = 2               serve: concurrent worker threads
//                                   issuing mixed lookup/ingest traffic
//                                   against the live service
//   serve_lookups = 50000           serve: lookup points per worker
//   serve_batch = 64                serve: points per LookupMany call
//                                   (one latency sample per call)
//   serve_read_pct = 90             serve: percent of worker operations
//                                   that are lookup batches; the rest
//                                   ingest the stream tail (always fully
//                                   drained, whatever the coin flips)
//   serve_zipf = 0.99               serve: Zipf exponent for hot-cell
//                                   skew in the lookup points (0 draws
//                                   cells uniformly)
//
// Unknown keys are errors (typos should not silently no-op). With the
// default `workload = pipeline`, every run in the expansion is one
// RunPipeline call; `workload = stream` instead drives each sweep point
// through the concurrent serving layer (service/fair_index_service.h):
// warmup build, batched ingest, epoch seals and drift-bounded refines.
// `workload = serve` layers the read path on top of stream: after the
// warmup build, serve_readers worker threads run a closed-loop mix of
// batched point lookups (FairIndexService::LookupMany against the
// published PointLookupIndex snapshot) and tail ingest while the
// service's background scheduler seals and refines — it requires
// maintain_policy = auto — and the row reports p50/p95/p99 LookupMany
// latency plus aggregate lookup QPS (the first 10% of each worker's
// lookup calls are treated as warmup and excluded from the percentiles).
// Independent sweep points execute on the shared ThreadPool (up to
// `threads` at once); rows always come back in height-major,
// algorithm-minor, seed-innermost order, bit-identical at any thread
// count — EXCEPT under `maintain_policy = auto` (and therefore under
// every serve run), where epoch/resplit counts (and hence final_ence,
// and all serve latency/QPS numbers) depend on background-thread timing
// by design: the scenario then exercises the hands-off serving story,
// not a reproducible measurement. Serve record and lookup counts stay
// deterministic.

#ifndef FAIRIDX_CORE_SCENARIO_H_
#define FAIRIDX_CORE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/experiment_config.h"
#include "core/pipeline.h"
#include "data/dataset.h"

namespace fairidx {

/// What one sweep point executes.
enum class ScenarioWorkload {
  /// The batch pipeline: one RunPipeline per sweep point.
  kPipeline,
  /// The serving layer: warmup build + batched ingest through a
  /// FairIndexService per sweep point.
  kStream,
  /// The read path: warmup build, then concurrent worker threads mixing
  /// batched point lookups with tail ingest against the live service
  /// while the background scheduler maintains (requires maintain_policy
  /// = auto). Reports lookup latency percentiles and QPS.
  kServe,
};

/// Who runs stream-workload maintenance.
enum class ScenarioMaintainPolicy {
  /// The ingest loop seals/refines (the pre-scheduler behavior).
  kCaller,
  /// The service-owned background scheduler seals/refines; the loop only
  /// ingests.
  kAuto,
};

/// One parsed scenario file (after include resolution).
struct ScenarioConfig {
  std::string name;
  std::string city = "la";
  /// When non-empty, load this CSV instead of generating `city`.
  std::string csv;
  ClassifierKind classifier = ClassifierKind::kLogisticRegression;
  std::vector<PartitionAlgorithm> algorithms = {
      PartitionAlgorithm::kFairKdTree};
  std::vector<int> heights = {6};
  std::vector<uint64_t> seeds = {20240601};
  int task = 0;
  int threads = 1;
  double test_fraction = 0.25;
  double min_region_population = 0.0;
  ScenarioWorkload workload = ScenarioWorkload::kPipeline;
  /// Streaming keys (used only when workload == kStream).
  int stream_batch = 500;
  int stream_shards = 1;
  /// Drift bound for incremental maintenance; < 0 streams without
  /// refining (the warmup partition stays fixed).
  double stream_refine_bound = 0.02;
  int stream_warmup_pct = 50;
  /// Seal (and maybe refine) once this many records are pending; 0 seals
  /// after every batch.
  long long stream_seal_records = 0;
  /// Caller-driven vs background maintenance (stream workload only).
  ScenarioMaintainPolicy maintain_policy = ScenarioMaintainPolicy::kCaller;
  /// Background wall-clock seal cadence in seconds (maintain_policy =
  /// auto only; 0 leaves only the record-count cadence).
  double seal_interval = 0.0;
  /// Durability root directory (stream workload only; empty disables the
  /// WAL and checkpoints). Each sweep point uses its own subdirectory.
  std::string wal_dir;
  /// Checkpoint every this many sealed epochs (<= 0: only at create).
  long long checkpoint_interval = 8;
  /// Every Nth checkpoint is a full snapshot, the rest are delta
  /// checkpoints (<= 1: all full; see DurabilityOptions).
  long long full_snapshot_interval = 1;
  /// WAL fsync mode: "none" | "batch" | "always".
  std::string fsync = "batch";
  /// Sealed-snapshot history bound applied after each maintenance pass
  /// (0 disables retention).
  int retain_epochs = 0;
  /// Serving keys (used only when workload == kServe, which also uses
  /// the stream_* ingest keys and requires maintain_policy = auto).
  /// Concurrent worker threads issuing mixed lookup/ingest traffic.
  int serve_readers = 2;
  /// Lookup points per worker thread.
  long long serve_lookups = 50000;
  /// Points per LookupMany call (one latency sample per call).
  int serve_batch = 64;
  /// Percent of worker operations that are lookup batches (the rest
  /// ingest the stream tail; leftovers drain after the lookups finish).
  int serve_read_pct = 90;
  /// Zipf exponent for hot-cell skew in lookup points (0 = uniform).
  double serve_zipf = 0.99;
};

/// Every config key the scenario parser accepts, including aliases, in
/// the parser's own order. docs/scenario_reference.md documents exactly
/// this list; tests/serve_scenario_test.cc enforces that both the doc
/// table and the parser's accepted set match it, so neither can rot.
std::vector<std::string> ScenarioKeyNames();

/// One point of the expanded sweep.
struct ScenarioRun {
  PartitionAlgorithm algorithm = PartitionAlgorithm::kFairKdTree;
  int height = 6;
  uint64_t seed = 20240601;
};

/// Parses scenario text. `include_dir` resolves relative include paths
/// (pass the file's directory; "" means the working directory).
Result<ScenarioConfig> ParseScenarioText(const std::string& text,
                                         const std::string& include_dir);

/// Loads and parses a scenario file (includes resolve relative to it).
Result<ScenarioConfig> LoadScenarioFile(const std::string& path);

/// The cross product algorithms x heights x seeds, height-major.
std::vector<ScenarioRun> ExpandScenario(const ScenarioConfig& config);

/// Loads the dataset a scenario names (CSV when set, city otherwise).
Result<Dataset> LoadScenarioDataset(const ScenarioConfig& config);

/// One sweep point's results.
struct ScenarioRow {
  ScenarioRun run;
  int regions = 0;
  double train_ence = 0.0;
  double test_ence = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double test_miscalibration = 0.0;
  double partition_seconds = 0.0;
  int model_fits = 0;
};

/// One streaming sweep point's results (workload = stream).
struct ScenarioStreamRow {
  ScenarioRun run;
  /// Final published partition size.
  int regions = 0;
  /// Records streamed (warmup + ingested).
  long long records = 0;
  /// Sealed epochs over the stream.
  long long epochs = 0;
  /// Subtree re-splits published by maintenance.
  long long resplits = 0;
  /// Partition publications that went out via an O(changed area)
  /// cell-map patch vs. a full O(grid) rebuild.
  long long published_patched = 0;
  long long published_fallback = 0;
  /// Region ENCE of the final partition on the final sealed epoch.
  double final_ence = 0.0;
  /// Wall-clock seconds for the whole stream (excl. the one model fit).
  double stream_seconds = 0.0;
};

/// One serving sweep point's results (workload = serve). Latency and
/// QPS numbers are timing-dependent by design (see the header comment);
/// `records` and `lookups` are deterministic.
struct ScenarioServeRow {
  ScenarioRun run;
  /// Final published partition size.
  int regions = 0;
  /// Records streamed (warmup + everything the workers ingested).
  long long records = 0;
  /// Sealed epochs over the run.
  long long epochs = 0;
  /// Subtree re-splits published by background maintenance.
  long long resplits = 0;
  /// Lookup points answered across all workers (warmup calls included).
  long long lookups = 0;
  /// lookups / serve_seconds.
  double read_qps = 0.0;
  /// LookupMany call latency percentiles in microseconds, over the
  /// steady-state window (first 10% of each worker's calls excluded).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Wall-clock seconds of the mixed-traffic phase (excludes the model
  /// fit, warmup build and workload pre-generation).
  double serve_seconds = 0.0;
  /// Worst single publication swap over the run (max wall-clock micros
  /// inside PublishMaintainedLocked — the reader-visible publish stall).
  long long publish_stall_us = 0;
  /// Worst single checkpoint write over the run (0 without a WAL).
  long long checkpoint_stall_us = 0;
  /// Region ENCE of the final partition on the final sealed epoch.
  double final_ence = 0.0;
};

/// A finished scenario execution. `rows` is filled for the pipeline
/// workload, `stream_rows` for the stream workload, `serve_rows` for the
/// serve workload; all in sweep order.
struct ScenarioReport {
  ScenarioWorkload workload = ScenarioWorkload::kPipeline;
  std::vector<ScenarioRow> rows;
  std::vector<ScenarioStreamRow> stream_rows;
  std::vector<ScenarioServeRow> serve_rows;
};

/// Executes every expanded run against `dataset`, dispatching on
/// config.workload. Runs that fail on a per-algorithm precondition the
/// config could not know about (e.g. multi-objective on a 1-task CSV, a
/// non-refinable structure under workload = stream) fail the whole
/// scenario — list only applicable algorithms. Independent sweep points
/// run on the shared ThreadPool, at most config.threads at once; the
/// report is bit-identical at any thread count.
Result<ScenarioReport> RunScenario(const ScenarioConfig& config,
                                   const Dataset& dataset);

/// Convenience: LoadScenarioDataset + RunScenario.
Result<ScenarioReport> RunScenario(const ScenarioConfig& config);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_SCENARIO_H_
