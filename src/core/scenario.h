// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Declarative experiment scenarios: a key = value config-file format plus
// the engine that executes one file as a multi-algorithm x multi-height x
// multi-seed pipeline sweep. `fairidx_cli run scenario.cfg`, the examples
// and CI smoke tests all drive experiments through these structs instead
// of ad-hoc flag plumbing.
//
// File format (one `key = value` per line):
//
//   # comment                       full-line or trailing comments
//   include = base.cfg              splice another file (relative to the
//                                   including file; later keys override)
//   name = paper-sweep              free-form label
//   city = la | houston             synthetic city (ignored when csv set)
//   csv = data/extract.csv          EdGap-style CSV instead of a city
//   classifier = lr | tree | nb
//   algorithms = fair_kd_tree, median_kd_tree     (registry names)
//   heights = 4, 6, 8    or    heights = 4..10    (sweep list / range)
//   seeds = 1, 2, 3                 split seeds (one run per seed)
//   task = 0
//   threads = 2                     partition-stage parallelism
//   test_fraction = 0.25
//   min_region_population = 0       region-merging post-process
//
// Unknown keys are errors (typos should not silently no-op). Every run in
// the expansion is one RunPipeline call; rows come back in
// height-major, algorithm-minor, seed-innermost order.

#ifndef FAIRIDX_CORE_SCENARIO_H_
#define FAIRIDX_CORE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/experiment_config.h"
#include "core/pipeline.h"
#include "data/dataset.h"

namespace fairidx {

/// One parsed scenario file (after include resolution).
struct ScenarioConfig {
  std::string name;
  std::string city = "la";
  /// When non-empty, load this CSV instead of generating `city`.
  std::string csv;
  ClassifierKind classifier = ClassifierKind::kLogisticRegression;
  std::vector<PartitionAlgorithm> algorithms = {
      PartitionAlgorithm::kFairKdTree};
  std::vector<int> heights = {6};
  std::vector<uint64_t> seeds = {20240601};
  int task = 0;
  int threads = 1;
  double test_fraction = 0.25;
  double min_region_population = 0.0;
};

/// One point of the expanded sweep.
struct ScenarioRun {
  PartitionAlgorithm algorithm = PartitionAlgorithm::kFairKdTree;
  int height = 6;
  uint64_t seed = 20240601;
};

/// Parses scenario text. `include_dir` resolves relative include paths
/// (pass the file's directory; "" means the working directory).
Result<ScenarioConfig> ParseScenarioText(const std::string& text,
                                         const std::string& include_dir);

/// Loads and parses a scenario file (includes resolve relative to it).
Result<ScenarioConfig> LoadScenarioFile(const std::string& path);

/// The cross product algorithms x heights x seeds, height-major.
std::vector<ScenarioRun> ExpandScenario(const ScenarioConfig& config);

/// Loads the dataset a scenario names (CSV when set, city otherwise).
Result<Dataset> LoadScenarioDataset(const ScenarioConfig& config);

/// One sweep point's results.
struct ScenarioRow {
  ScenarioRun run;
  int regions = 0;
  double train_ence = 0.0;
  double test_ence = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double test_miscalibration = 0.0;
  double partition_seconds = 0.0;
  int model_fits = 0;
};

/// A finished scenario execution.
struct ScenarioReport {
  std::vector<ScenarioRow> rows;
};

/// Executes every expanded run against `dataset`. Runs that fail on a
/// per-algorithm precondition the config could not know about (e.g.
/// multi-objective on a 1-task CSV) fail the whole scenario — list only
/// applicable algorithms.
Result<ScenarioReport> RunScenario(const ScenarioConfig& config,
                                   const Dataset& dataset);

/// Convenience: LoadScenarioDataset + RunScenario.
Result<ScenarioReport> RunScenario(const ScenarioConfig& config);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_SCENARIO_H_
