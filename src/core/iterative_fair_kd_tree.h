// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Iterative Fair KD-tree (Algorithm 3): a BFS refinement that retrains the
// classifier at every tree level, so each level's splits use refreshed
// confidence scores. Costs one model fit per level (Theorem 4) but yields
// fairer partitions than the one-shot Fair KD-tree.

#ifndef FAIRIDX_CORE_ITERATIVE_FAIR_KD_TREE_H_
#define FAIRIDX_CORE_ITERATIVE_FAIR_KD_TREE_H_

#include "common/result.h"
#include "data/dataset.h"
#include "data/split.h"
#include "index/kd_tree.h"
#include "ml/classifier.h"

namespace fairidx {

/// Options for the iterative build.
struct IterativeFairKdTreeOptions {
  int height = 6;
  int task = 0;
  NeighborhoodEncoding encoding = NeighborhoodEncoding::kNumericId;
  SplitObjectiveOptions objective{SplitObjectiveKind::kPaperEq9, 0.0};
  /// Per-region axis rule for each BFS level (matches BuildKdTreePartition:
  /// kAlternate splits the level's axis with fallback, kBestObjective
  /// evaluates both axes per region).
  AxisPolicy axis_policy = AxisPolicy::kAlternate;
  /// Splits each level's regions in parallel chunks when > 1; the refined
  /// region list is identical at any thread count.
  int num_threads = 1;
};

/// Result of the iterative build.
struct IterativeFairKdTreeResult {
  PartitionResult partition;
  /// Number of model fits performed (== the number of levels executed).
  int retrain_count = 0;
};

/// Runs Algorithm 3. Starts from a single all-map neighborhood; at each
/// level, fits a clone of `prototype` on `split.train_indices` (with the
/// level's neighborhoods as the location feature), refreshes scores, and
/// splits every region along the level's axis. The input dataset is not
/// modified.
Result<IterativeFairKdTreeResult> BuildIterativeFairKdTree(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const IterativeFairKdTreeOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_ITERATIVE_FAIR_KD_TREE_H_
