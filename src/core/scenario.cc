#include "core/scenario.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/csv_dataset.h"
#include "data/edgap_synthetic.h"
#include "fairness/region_metrics.h"
#include "service/fair_index_service.h"

namespace fairidx {
namespace {

// Includes may nest (base configs including base configs) but a cycle must
// terminate with a readable error, not a stack overflow.
constexpr int kMaxIncludeDepth = 8;

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string ResolvePath(const std::string& include_dir,
                        const std::string& path) {
  if (path.empty() || path[0] == '/' || include_dir.empty()) return path;
  return include_dir + "/" + path;
}

Result<std::vector<std::string>> SplitList(const std::string& value) {
  std::vector<std::string> items;
  for (const std::string& raw : Split(value, ',')) {
    std::string item = Trim(raw);
    if (item.empty()) {
      return InvalidArgumentError("empty element in list '" + value + "'");
    }
    items.push_back(std::move(item));
  }
  if (items.empty()) {
    return InvalidArgumentError("empty list");
  }
  return items;
}

// Heights accept both comma lists and inclusive "lo..hi" ranges.
Result<std::vector<int>> ParseHeights(const std::string& value) {
  std::vector<int> heights;
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<std::string> items,
                           SplitList(value));
  for (const std::string& item : items) {
    const size_t dots = item.find("..");
    if (dots != std::string::npos) {
      FAIRIDX_ASSIGN_OR_RETURN(int lo, ParseInt(item.substr(0, dots)));
      FAIRIDX_ASSIGN_OR_RETURN(int hi, ParseInt(item.substr(dots + 2)));
      if (lo > hi) {
        return InvalidArgumentError("empty height range '" + item + "'");
      }
      for (int h = lo; h <= hi; ++h) heights.push_back(h);
    } else {
      FAIRIDX_ASSIGN_OR_RETURN(int height, ParseInt(item));
      heights.push_back(height);
    }
  }
  for (int height : heights) {
    if (height < 0) {
      return InvalidArgumentError("heights must be >= 0");
    }
  }
  return heights;
}

Result<std::vector<uint64_t>> ParseSeeds(const std::string& value) {
  std::vector<uint64_t> seeds;
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<std::string> items,
                           SplitList(value));
  for (const std::string& item : items) {
    // Digits only: strtoull would silently wrap a leading '-' and
    // saturate on overflow, changing every split in the sweep.
    if (item.find_first_not_of("0123456789") != std::string::npos) {
      return InvalidArgumentError("bad seed '" + item + "'");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || errno == ERANGE) {
      return InvalidArgumentError("bad seed '" + item + "'");
    }
    seeds.push_back(static_cast<uint64_t>(seed));
  }
  return seeds;
}

Result<std::vector<PartitionAlgorithm>> ParseAlgorithms(
    const std::string& value) {
  std::vector<PartitionAlgorithm> algorithms;
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<std::string> items,
                           SplitList(value));
  for (const std::string& item : items) {
    if (item == "all") {
      for (PartitionAlgorithm algorithm : AllPartitionAlgorithms()) {
        algorithms.push_back(algorithm);
      }
      continue;
    }
    FAIRIDX_ASSIGN_OR_RETURN(PartitionAlgorithm algorithm,
                             ParsePartitionAlgorithm(item));
    algorithms.push_back(algorithm);
  }
  return algorithms;
}

Status ParseInto(const std::string& text, const std::string& include_dir,
                 int depth, ScenarioConfig* config);

Status IncludeFile(const std::string& path, int depth,
                   ScenarioConfig* config) {
  if (depth > kMaxIncludeDepth) {
    return InvalidArgumentError(
        "scenario include depth exceeded (include cycle?)");
  }
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open scenario file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseInto(buffer.str(), DirnameOf(path), depth, config);
}

Status ParseInto(const std::string& text, const std::string& include_dir,
                 int depth, ScenarioConfig* config) {
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string line = raw_line;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError(
          StrFormat("scenario line %d: expected 'key = value', got '%s'",
                    line_number, line.c_str()));
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return InvalidArgumentError(
          StrFormat("scenario line %d: empty key or value", line_number));
    }

    Status status = Status::Ok();
    if (key == "include") {
      status = IncludeFile(ResolvePath(include_dir, value), depth + 1,
                           config);
    } else if (key == "name") {
      config->name = value;
    } else if (key == "city") {
      config->city = value;
    } else if (key == "csv") {
      config->csv = ResolvePath(include_dir, value);
    } else if (key == "classifier") {
      auto kind = ParseClassifierKind(value);
      if (kind.ok()) config->classifier = *kind;
      status = kind.ok() ? Status::Ok() : kind.status();
    } else if (key == "algorithms" || key == "algorithm") {
      auto algorithms = ParseAlgorithms(value);
      if (algorithms.ok()) config->algorithms = std::move(*algorithms);
      status = algorithms.ok() ? Status::Ok() : algorithms.status();
    } else if (key == "heights" || key == "height") {
      auto heights = ParseHeights(value);
      if (heights.ok()) config->heights = std::move(*heights);
      status = heights.ok() ? Status::Ok() : heights.status();
    } else if (key == "seeds" || key == "seed") {
      auto seeds = ParseSeeds(value);
      if (seeds.ok()) config->seeds = std::move(*seeds);
      status = seeds.ok() ? Status::Ok() : seeds.status();
    } else if (key == "task") {
      auto task = ParseInt(value);
      if (task.ok()) config->task = *task;
      status = task.ok() ? Status::Ok() : task.status();
    } else if (key == "threads") {
      auto threads = ParseInt(value);
      if (threads.ok()) config->threads = *threads;
      status = threads.ok() ? Status::Ok() : threads.status();
    } else if (key == "test_fraction") {
      auto fraction = ParseDouble(value);
      if (fraction.ok()) config->test_fraction = *fraction;
      status = fraction.ok() ? Status::Ok() : fraction.status();
    } else if (key == "min_region_population") {
      auto population = ParseDouble(value);
      if (population.ok()) config->min_region_population = *population;
      status = population.ok() ? Status::Ok() : population.status();
    } else if (key == "workload") {
      if (value == "pipeline") {
        config->workload = ScenarioWorkload::kPipeline;
      } else if (value == "stream") {
        config->workload = ScenarioWorkload::kStream;
      } else {
        status = InvalidArgumentError("unknown workload '" + value +
                                      "' (expected pipeline|stream)");
      }
    } else if (key == "stream_batch") {
      auto batch = ParseInt(value);
      if (batch.ok()) config->stream_batch = *batch;
      status = batch.ok() ? Status::Ok() : batch.status();
    } else if (key == "stream_shards") {
      auto shards = ParseInt(value);
      if (shards.ok()) config->stream_shards = *shards;
      status = shards.ok() ? Status::Ok() : shards.status();
    } else if (key == "stream_refine_bound") {
      auto bound = ParseDouble(value);
      if (bound.ok()) config->stream_refine_bound = *bound;
      status = bound.ok() ? Status::Ok() : bound.status();
    } else if (key == "stream_warmup_pct") {
      auto pct = ParseInt(value);
      if (pct.ok()) config->stream_warmup_pct = *pct;
      status = pct.ok() ? Status::Ok() : pct.status();
    } else if (key == "stream_seal_records") {
      auto seal = ParseInt(value);
      if (seal.ok()) config->stream_seal_records = *seal;
      status = seal.ok() ? Status::Ok() : seal.status();
    } else if (key == "maintain_policy") {
      if (value == "caller") {
        config->maintain_policy = ScenarioMaintainPolicy::kCaller;
      } else if (value == "auto") {
        config->maintain_policy = ScenarioMaintainPolicy::kAuto;
      } else {
        status = InvalidArgumentError("unknown maintain_policy '" + value +
                                      "' (expected caller|auto)");
      }
    } else if (key == "seal_interval") {
      auto interval = ParseDouble(value);
      if (interval.ok()) config->seal_interval = *interval;
      status = interval.ok() ? Status::Ok() : interval.status();
    } else if (key == "drift_bound") {
      // The maintenance-policy spelling of stream_refine_bound: one field,
      // two names, so the caller loop and the background scheduler can
      // never disagree on the bound.
      auto bound = ParseDouble(value);
      if (bound.ok()) config->stream_refine_bound = *bound;
      status = bound.ok() ? Status::Ok() : bound.status();
    } else if (key == "wal_dir") {
      config->wal_dir = value;
    } else if (key == "checkpoint_interval") {
      auto interval = ParseInt(value);
      if (interval.ok()) config->checkpoint_interval = *interval;
      status = interval.ok() ? Status::Ok() : interval.status();
    } else if (key == "fsync") {
      config->fsync = value;
    } else if (key == "retain_epochs") {
      auto retain = ParseInt(value);
      if (retain.ok()) config->retain_epochs = *retain;
      status = retain.ok() ? Status::Ok() : retain.status();
    } else {
      status = InvalidArgumentError("unknown scenario key '" + key + "'");
    }
    if (!status.ok()) {
      return InvalidArgumentError(
          StrFormat("scenario line %d: %s", line_number,
                    status.ToString().c_str()));
    }
  }
  return Status::Ok();
}

Status ValidateScenario(const ScenarioConfig& config) {
  if (config.algorithms.empty()) {
    return InvalidArgumentError("scenario: no algorithms");
  }
  if (config.heights.empty()) {
    return InvalidArgumentError("scenario: no heights");
  }
  if (config.seeds.empty()) {
    return InvalidArgumentError("scenario: no seeds");
  }
  if (config.task < 0) {
    return InvalidArgumentError("scenario: task must be >= 0");
  }
  if (config.threads < 1) {
    return InvalidArgumentError("scenario: threads must be >= 1");
  }
  if (config.test_fraction <= 0.0 || config.test_fraction >= 1.0) {
    return InvalidArgumentError(
        "scenario: test_fraction must be in (0, 1)");
  }
  if (config.stream_batch < 1) {
    return InvalidArgumentError("scenario: stream_batch must be >= 1");
  }
  if (config.stream_shards < 1) {
    return InvalidArgumentError("scenario: stream_shards must be >= 1");
  }
  if (config.stream_warmup_pct < 1 || config.stream_warmup_pct > 99) {
    return InvalidArgumentError(
        "scenario: stream_warmup_pct must be in [1, 99]");
  }
  if (config.stream_seal_records < 0) {
    return InvalidArgumentError(
        "scenario: stream_seal_records must be >= 0");
  }
  if (config.workload == ScenarioWorkload::kStream &&
      config.min_region_population > 0.0) {
    // The stream workload has no region-merging post-process; silently
    // dropping the key would violate the engine's typo-proof stance.
    return InvalidArgumentError(
        "scenario: min_region_population is not supported with "
        "workload = stream");
  }
  if (config.seal_interval < 0.0) {
    return InvalidArgumentError("scenario: seal_interval must be >= 0");
  }
  if (config.maintain_policy == ScenarioMaintainPolicy::kAuto &&
      config.workload != ScenarioWorkload::kStream) {
    // Background maintenance only exists on the serving path; silently
    // ignoring the key on a pipeline sweep would hide the typo.
    return InvalidArgumentError(
        "scenario: maintain_policy = auto requires workload = stream");
  }
  if (config.seal_interval > 0.0 &&
      config.maintain_policy != ScenarioMaintainPolicy::kAuto) {
    return InvalidArgumentError(
        "scenario: seal_interval requires maintain_policy = auto (the "
        "caller loop seals by stream_seal_records)");
  }
  if (!config.wal_dir.empty() &&
      config.workload != ScenarioWorkload::kStream) {
    // Durability only exists on the serving path; dropping the key on a
    // pipeline sweep would hide the typo.
    return InvalidArgumentError(
        "scenario: wal_dir requires workload = stream");
  }
  if (!ParseWalFsync(config.fsync).ok()) {
    return InvalidArgumentError("scenario: unknown fsync '" + config.fsync +
                                "' (expected none|batch|always)");
  }
  if (config.retain_epochs < 0) {
    return InvalidArgumentError("scenario: retain_epochs must be >= 0");
  }
  return Status::Ok();
}

}  // namespace

Result<ScenarioConfig> ParseScenarioText(const std::string& text,
                                         const std::string& include_dir) {
  ScenarioConfig config;
  FAIRIDX_RETURN_IF_ERROR(ParseInto(text, include_dir, 0, &config));
  FAIRIDX_RETURN_IF_ERROR(ValidateScenario(config));
  return config;
}

Result<ScenarioConfig> LoadScenarioFile(const std::string& path) {
  ScenarioConfig config;
  FAIRIDX_RETURN_IF_ERROR(IncludeFile(path, 0, &config));
  FAIRIDX_RETURN_IF_ERROR(ValidateScenario(config));
  if (config.name.empty()) config.name = path;
  return config;
}

std::vector<ScenarioRun> ExpandScenario(const ScenarioConfig& config) {
  std::vector<ScenarioRun> runs;
  runs.reserve(config.heights.size() * config.algorithms.size() *
               config.seeds.size());
  for (int height : config.heights) {
    for (PartitionAlgorithm algorithm : config.algorithms) {
      for (uint64_t seed : config.seeds) {
        runs.push_back(ScenarioRun{algorithm, height, seed});
      }
    }
  }
  return runs;
}

Result<Dataset> LoadScenarioDataset(const ScenarioConfig& config) {
  if (!config.csv.empty()) {
    return LoadEdgapCsvFile(config.csv, CsvDatasetOptions{});
  }
  if (config.city == "la" || config.city == "losangeles") {
    return GenerateEdgapCity(LosAngelesConfig());
  }
  if (config.city == "houston") {
    return GenerateEdgapCity(HoustonConfig());
  }
  return InvalidArgumentError("unknown city '" + config.city +
                              "' (expected la|houston)");
}

namespace {

Result<ScenarioRow> RunOnePipelinePoint(const ScenarioConfig& config,
                                        const Dataset& dataset,
                                        const Classifier& prototype,
                                        const ScenarioRun& run) {
  PipelineOptions options;
  options.algorithm = run.algorithm;
  options.height = run.height;
  options.task = config.task;
  options.num_threads = config.threads;
  options.test_fraction = config.test_fraction;
  options.split_seed = run.seed;
  options.min_region_population = config.min_region_population;
  FAIRIDX_ASSIGN_OR_RETURN(PipelineRunResult result,
                           RunPipeline(dataset, prototype, options));
  ScenarioRow row;
  row.run = run;
  row.regions = result.final_model.eval.num_neighborhoods;
  row.train_ence = result.final_model.eval.train_ence;
  row.test_ence = result.final_model.eval.test_ence;
  row.train_accuracy = result.final_model.eval.train_accuracy;
  row.test_accuracy = result.final_model.eval.test_accuracy;
  row.test_miscalibration = result.final_model.eval.test_miscalibration;
  row.partition_seconds = result.partition_seconds;
  row.model_fits = result.partition_stage_fits;
  return row;
}

// One serving-layer sweep point: one model fit scores every record, a
// warmup prefix builds the maintained partition, and the tail streams
// through a FairIndexService (ingest batches, epoch seals, drift-bounded
// refines) — the scenario-file form of `fairidx_cli stream`. With
// maintain_policy = auto the service's background scheduler owns the
// seal/refine cadence and the loop below only ingests.
Result<ScenarioStreamRow> RunOneStreamPoint(const ScenarioConfig& config,
                                            const Dataset& dataset,
                                            const Classifier& prototype,
                                            const ScenarioRun& run) {
  if (config.task < 0 || config.task >= dataset.num_tasks()) {
    return InvalidArgumentError("scenario: task out of range for dataset");
  }
  Rng rng(run.seed);
  FAIRIDX_ASSIGN_OR_RETURN(
      TrainTestSplit split,
      MakeStratifiedSplit(dataset.labels(config.task),
                          config.test_fraction, rng));
  FAIRIDX_ASSIGN_OR_RETURN(
      TrainedEvaluation trained,
      TrainOnBaseGrid(dataset, split, prototype, EvalOptions{}));

  AggregateBatch all;
  all.cell_ids = dataset.base_cells();
  all.labels = dataset.labels(config.task);
  all.scores = trained.scores;
  const size_t n = dataset.num_records();
  const size_t warmup = std::max<size_t>(
      1, n * static_cast<size_t>(config.stream_warmup_pct) / 100);
  const AggregateBatch warm = all.Slice(0, warmup);

  FairIndexServiceOptions service_options;
  service_options.algorithm = PartitionAlgorithmName(run.algorithm);
  service_options.build.height = run.height;
  service_options.build.task = config.task;
  service_options.build.num_threads = config.threads;
  service_options.store.num_shards = config.stream_shards;
  service_options.store.num_threads = config.threads;
  service_options.refine.drift_bound = config.stream_refine_bound;
  if (!config.wal_dir.empty()) {
    // One subdirectory per sweep point: concurrent points must never
    // interleave their logs.
    service_options.durability.wal_dir =
        config.wal_dir + "/" + PartitionAlgorithmName(run.algorithm) +
        "-h" + std::to_string(run.height) + "-s" +
        std::to_string(run.seed);
    service_options.durability.checkpoint_interval =
        config.checkpoint_interval;
    FAIRIDX_ASSIGN_OR_RETURN(service_options.durability.fsync,
                             ParseWalFsync(config.fsync));
  }
  const bool refine = config.stream_refine_bound >= 0.0;
  const bool auto_maintain =
      config.maintain_policy == ScenarioMaintainPolicy::kAuto;
  if (auto_maintain) {
    service_options.auto_maintain = true;
    // stream_seal_records = 0 means "every batch" in caller mode; for
    // the scheduler that is a 1-record cadence — unless seal_interval
    // was given, in which case 0 disables the record cadence so the
    // wall clock alone governs (interval-only policies stay
    // expressible).
    service_options.maintain.seal_records =
        config.stream_seal_records > 0
            ? config.stream_seal_records
            : (config.seal_interval > 0.0 ? 0 : 1);
    service_options.maintain.seal_interval_seconds = config.seal_interval;
    service_options.maintain.drift_bound =
        refine ? config.stream_refine_bound : -1.0;
    service_options.maintain.poll_interval_seconds = 0.002;
    service_options.maintain.retain_epochs = config.retain_epochs;
  }

  const auto start = std::chrono::steady_clock::now();
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<FairIndexService> service,
      FairIndexService::Create(dataset.grid(), warm, service_options));

  for (size_t next = warmup; next < n;) {
    const size_t end =
        std::min(n, next + static_cast<size_t>(config.stream_batch));
    FAIRIDX_RETURN_IF_ERROR(
        service->Ingest(all.Slice(next, end)).status());
    next = end;
    if (auto_maintain) continue;  // The background scheduler maintains.
    if (service->store().pending_records() >= config.stream_seal_records) {
      if (refine) {
        FAIRIDX_RETURN_IF_ERROR(service->MaybeRefine().status());
      } else {
        FAIRIDX_RETURN_IF_ERROR(service->Seal().status());
      }
      if (config.retain_epochs > 0) {
        service->ApplyRetention(config.retain_epochs);
      }
    }
  }
  // Quiesce before the final audit: stop the scheduler (joins any
  // in-flight pass), then seal the tail.
  if (auto_maintain) service->StopMaintenance();
  FAIRIDX_RETURN_IF_ERROR(service->Seal().status());
  const std::vector<RegionAggregate> final_regions =
      service->QueryRegions();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ScenarioStreamRow row;
  row.run = run;
  row.regions = static_cast<int>(final_regions.size());
  row.records = service->store().num_records();
  row.epochs = service->store().epoch();
  row.resplits = service->total_resplits();
  row.final_ence = RegionEnce(final_regions).ence;
  row.stream_seconds =
      std::chrono::duration<double>(elapsed).count();
  return row;
}

// Executes `fn` over every sweep point on the shared ThreadPool (at most
// config.threads at once), preserving sweep order. Each point is
// independent and internally deterministic, so the row vector is
// bit-identical at any thread count; on failures the error of the
// EARLIEST failing point (in sweep order) is returned, also regardless
// of thread count.
template <typename Row, typename Fn>
Result<std::vector<Row>> RunSweepPoints(const ScenarioConfig& config,
                                        const std::vector<ScenarioRun>& runs,
                                        Fn fn) {
  std::vector<Result<Row>> results(
      runs.size(), Result<Row>(InternalError("sweep point not executed")));
  ThreadPool::Shared().ParallelFor(
      runs.size(), config.threads,
      [&](size_t i) { results[i] = fn(runs[i]); });
  std::vector<Row> rows;
  rows.reserve(runs.size());
  for (Result<Row>& result : results) {
    if (!result.ok()) return result.status();
    rows.push_back(std::move(result).value());
  }
  return rows;
}

}  // namespace

Result<ScenarioReport> RunScenario(const ScenarioConfig& config,
                                   const Dataset& dataset) {
  FAIRIDX_RETURN_IF_ERROR(ValidateScenario(config));
  const std::unique_ptr<Classifier> prototype =
      MakeClassifier(config.classifier);
  const std::vector<ScenarioRun> runs = ExpandScenario(config);
  ScenarioReport report;
  report.workload = config.workload;
  if (config.workload == ScenarioWorkload::kStream) {
    FAIRIDX_ASSIGN_OR_RETURN(
        report.stream_rows,
        (RunSweepPoints<ScenarioStreamRow>(
            config, runs, [&](const ScenarioRun& run) {
              return RunOneStreamPoint(config, dataset, *prototype, run);
            })));
  } else {
    FAIRIDX_ASSIGN_OR_RETURN(
        report.rows,
        (RunSweepPoints<ScenarioRow>(
            config, runs, [&](const ScenarioRun& run) {
              return RunOnePipelinePoint(config, dataset, *prototype, run);
            })));
  }
  return report;
}

Result<ScenarioReport> RunScenario(const ScenarioConfig& config) {
  FAIRIDX_ASSIGN_OR_RETURN(Dataset dataset, LoadScenarioDataset(config));
  return RunScenario(config, dataset);
}

}  // namespace fairidx
