#include "core/scenario.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>
#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/csv_dataset.h"
#include "data/edgap_synthetic.h"
#include "fairness/region_metrics.h"
#include "service/fair_index_service.h"
#include "service/tenant_registry.h"

namespace fairidx {
namespace {

// Includes may nest (base configs including base configs) but a cycle must
// terminate with a readable error, not a stack overflow.
constexpr int kMaxIncludeDepth = 8;

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string ResolvePath(const std::string& include_dir,
                        const std::string& path) {
  if (path.empty() || path[0] == '/' || include_dir.empty()) return path;
  return include_dir + "/" + path;
}

Result<std::vector<std::string>> SplitList(const std::string& value) {
  std::vector<std::string> items;
  for (const std::string& raw : Split(value, ',')) {
    std::string item = Trim(raw);
    if (item.empty()) {
      return InvalidArgumentError("empty element in list '" + value + "'");
    }
    items.push_back(std::move(item));
  }
  if (items.empty()) {
    return InvalidArgumentError("empty list");
  }
  return items;
}

// Heights accept both comma lists and inclusive "lo..hi" ranges.
Result<std::vector<int>> ParseHeights(const std::string& value) {
  std::vector<int> heights;
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<std::string> items,
                           SplitList(value));
  for (const std::string& item : items) {
    const size_t dots = item.find("..");
    if (dots != std::string::npos) {
      FAIRIDX_ASSIGN_OR_RETURN(int lo, ParseInt(item.substr(0, dots)));
      FAIRIDX_ASSIGN_OR_RETURN(int hi, ParseInt(item.substr(dots + 2)));
      if (lo > hi) {
        return InvalidArgumentError("empty height range '" + item + "'");
      }
      for (int h = lo; h <= hi; ++h) heights.push_back(h);
    } else {
      FAIRIDX_ASSIGN_OR_RETURN(int height, ParseInt(item));
      heights.push_back(height);
    }
  }
  for (int height : heights) {
    if (height < 0) {
      return InvalidArgumentError("heights must be >= 0");
    }
  }
  return heights;
}

Result<uint64_t> ParseOneSeed(const std::string& item) {
  // Digits only: strtoull would silently wrap a leading '-' and
  // saturate on overflow, changing every split in the sweep.
  if (item.find_first_not_of("0123456789") != std::string::npos) {
    return InvalidArgumentError("bad seed '" + item + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long seed = std::strtoull(item.c_str(), &end, 10);
  if (end == item.c_str() || *end != '\0' || errno == ERANGE) {
    return InvalidArgumentError("bad seed '" + item + "'");
  }
  return static_cast<uint64_t>(seed);
}

Result<std::vector<uint64_t>> ParseSeeds(const std::string& value) {
  std::vector<uint64_t> seeds;
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<std::string> items,
                           SplitList(value));
  for (const std::string& item : items) {
    FAIRIDX_ASSIGN_OR_RETURN(uint64_t seed, ParseOneSeed(item));
    seeds.push_back(seed);
  }
  return seeds;
}

Result<std::vector<PartitionAlgorithm>> ParseAlgorithms(
    const std::string& value) {
  std::vector<PartitionAlgorithm> algorithms;
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<std::string> items,
                           SplitList(value));
  for (const std::string& item : items) {
    if (item == "all") {
      for (PartitionAlgorithm algorithm : AllPartitionAlgorithms()) {
        algorithms.push_back(algorithm);
      }
      continue;
    }
    FAIRIDX_ASSIGN_OR_RETURN(PartitionAlgorithm algorithm,
                             ParsePartitionAlgorithm(item));
    algorithms.push_back(algorithm);
  }
  return algorithms;
}

// Every key the if-chain in ParseInto accepts, including aliases, in the
// chain's own order. Kept adjacent to the chain so an edit to one is an
// edit to both; tests/serve_scenario_test.cc cross-checks this list
// against the parser's actual behavior AND against the key table in
// docs/scenario_reference.md, so neither the list nor the doc can rot.
constexpr const char* kScenarioKeys[] = {
    "include",         "name",
    "city",            "csv",
    "classifier",      "algorithms",
    "algorithm",       "heights",
    "height",          "seeds",
    "seed",            "task",
    "threads",         "test_fraction",
    "min_region_population",
    "workload",        "stream_batch",
    "stream_shards",   "stream_refine_bound",
    "stream_warmup_pct",
    "stream_seal_records",
    "maintain_policy", "seal_interval",
    "drift_bound",     "wal_dir",
    "checkpoint_interval",
    "full_snapshot_interval",
    "fsync",           "retain_epochs",
    "serve_readers",   "serve_lookups",
    "serve_batch",     "serve_read_pct",
    "serve_zipf",      "drift",
    "drift_hot_pct",   "drift_window_pct",
};

// Every sub-key ParseTenantKey accepts inside a tenant.<name>.<key>
// section, in its dispatch order, spelled the way the reference doc
// lists them. Same anti-rot contract as kScenarioKeys: the doc table is
// test-enforced against ScenarioKeyNames() + TenantScenarioKeyNames().
constexpr const char* kTenantKeys[] = {
    "city",          "algorithm",
    "height",        "seed",
    "batch",         "shards",
    "warmup_pct",    "seal_records",
    "seal_interval", "drift_bound",
    "retain_epochs", "lookups",
    "read_pct",      "zipf",
    "drift",         "fsync",
    "checkpoint_interval",
    "full_snapshot_interval",
};

// Tenant names double as per-tenant WAL namespace directories, so the
// accepted alphabet must not allow separators or traversal (the same
// rule TenantRegistry enforces).
Status ValidateScenarioTenantName(const std::string& name) {
  if (name.empty()) {
    return InvalidArgumentError("empty tenant name");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      return InvalidArgumentError("tenant name '" + name +
                                  "' must match [A-Za-z0-9_-]+");
    }
  }
  return Status::Ok();
}

// One `tenant.<name>.<key> = value` line: find-or-create the named
// section (first-appearance order) and set the override. Values are
// validated here the way the top-level keys are; range checks live in
// ValidateScenario next to their top-level twins.
Status ParseTenantKey(const std::string& key, const std::string& value,
                      ScenarioConfig* config) {
  const std::string rest = key.substr(7);  // past "tenant."
  const size_t dot = rest.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
    return InvalidArgumentError(
        "tenant keys are spelled tenant.<name>.<key>, got '" + key + "'");
  }
  const std::string name = rest.substr(0, dot);
  const std::string sub = rest.substr(dot + 1);
  FAIRIDX_RETURN_IF_ERROR(ValidateScenarioTenantName(name));
  ScenarioTenantConfig* tenant = nullptr;
  for (ScenarioTenantConfig& existing : config->tenants) {
    if (existing.name == name) tenant = &existing;
  }
  if (tenant == nullptr) {
    config->tenants.emplace_back();
    config->tenants.back().name = name;
    tenant = &config->tenants.back();
  }
  if (sub == "city") {
    tenant->city = value;
  } else if (sub == "algorithm") {
    FAIRIDX_RETURN_IF_ERROR(ParsePartitionAlgorithm(value).status());
    tenant->algorithm = value;
  } else if (sub == "height") {
    FAIRIDX_ASSIGN_OR_RETURN(int height, ParseInt(value));
    tenant->height = height;
  } else if (sub == "seed") {
    FAIRIDX_ASSIGN_OR_RETURN(uint64_t seed, ParseOneSeed(value));
    tenant->seed = seed;
  } else if (sub == "batch") {
    FAIRIDX_ASSIGN_OR_RETURN(int batch, ParseInt(value));
    tenant->batch = batch;
  } else if (sub == "shards") {
    FAIRIDX_ASSIGN_OR_RETURN(int shards, ParseInt(value));
    tenant->shards = shards;
  } else if (sub == "warmup_pct") {
    FAIRIDX_ASSIGN_OR_RETURN(int pct, ParseInt(value));
    tenant->warmup_pct = pct;
  } else if (sub == "seal_records") {
    FAIRIDX_ASSIGN_OR_RETURN(int records, ParseInt(value));
    tenant->seal_records = records;
  } else if (sub == "seal_interval") {
    FAIRIDX_ASSIGN_OR_RETURN(double interval, ParseDouble(value));
    tenant->seal_interval = interval;
  } else if (sub == "drift_bound") {
    FAIRIDX_ASSIGN_OR_RETURN(double bound, ParseDouble(value));
    tenant->drift_bound = bound;
  } else if (sub == "retain_epochs") {
    FAIRIDX_ASSIGN_OR_RETURN(int retain, ParseInt(value));
    tenant->retain_epochs = retain;
  } else if (sub == "lookups") {
    FAIRIDX_ASSIGN_OR_RETURN(int lookups, ParseInt(value));
    tenant->lookups = lookups;
  } else if (sub == "read_pct") {
    FAIRIDX_ASSIGN_OR_RETURN(int pct, ParseInt(value));
    tenant->read_pct = pct;
  } else if (sub == "zipf") {
    FAIRIDX_ASSIGN_OR_RETURN(double zipf, ParseDouble(value));
    tenant->zipf = zipf;
  } else if (sub == "drift") {
    tenant->drift = value;
  } else if (sub == "fsync") {
    tenant->fsync = value;
  } else if (sub == "checkpoint_interval") {
    FAIRIDX_ASSIGN_OR_RETURN(int interval, ParseInt(value));
    tenant->checkpoint_interval = interval;
  } else if (sub == "full_snapshot_interval") {
    FAIRIDX_ASSIGN_OR_RETURN(int interval, ParseInt(value));
    tenant->full_snapshot_interval = interval;
  } else {
    return InvalidArgumentError("unknown scenario key '" + key +
                                "' (see TenantScenarioKeyNames for the "
                                "accepted tenant.<name>.* sub-keys)");
  }
  return Status::Ok();
}

Status ParseInto(const std::string& text, const std::string& include_dir,
                 int depth, ScenarioConfig* config);

Status IncludeFile(const std::string& path, int depth,
                   ScenarioConfig* config) {
  if (depth > kMaxIncludeDepth) {
    return InvalidArgumentError(
        "scenario include depth exceeded (include cycle?)");
  }
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open scenario file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseInto(buffer.str(), DirnameOf(path), depth, config);
}

Status ParseInto(const std::string& text, const std::string& include_dir,
                 int depth, ScenarioConfig* config) {
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string line = raw_line;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError(
          StrFormat("scenario line %d: expected 'key = value', got '%s'",
                    line_number, line.c_str()));
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return InvalidArgumentError(
          StrFormat("scenario line %d: empty key or value", line_number));
    }

    Status status = Status::Ok();
    if (key == "include") {
      status = IncludeFile(ResolvePath(include_dir, value), depth + 1,
                           config);
    } else if (key == "name") {
      config->name = value;
    } else if (key == "city") {
      config->city = value;
    } else if (key == "csv") {
      config->csv = ResolvePath(include_dir, value);
    } else if (key == "classifier") {
      auto kind = ParseClassifierKind(value);
      if (kind.ok()) config->classifier = *kind;
      status = kind.ok() ? Status::Ok() : kind.status();
    } else if (key == "algorithms" || key == "algorithm") {
      auto algorithms = ParseAlgorithms(value);
      if (algorithms.ok()) config->algorithms = std::move(*algorithms);
      status = algorithms.ok() ? Status::Ok() : algorithms.status();
    } else if (key == "heights" || key == "height") {
      auto heights = ParseHeights(value);
      if (heights.ok()) config->heights = std::move(*heights);
      status = heights.ok() ? Status::Ok() : heights.status();
    } else if (key == "seeds" || key == "seed") {
      auto seeds = ParseSeeds(value);
      if (seeds.ok()) config->seeds = std::move(*seeds);
      status = seeds.ok() ? Status::Ok() : seeds.status();
    } else if (key == "task") {
      auto task = ParseInt(value);
      if (task.ok()) config->task = *task;
      status = task.ok() ? Status::Ok() : task.status();
    } else if (key == "threads") {
      auto threads = ParseInt(value);
      if (threads.ok()) config->threads = *threads;
      status = threads.ok() ? Status::Ok() : threads.status();
    } else if (key == "test_fraction") {
      auto fraction = ParseDouble(value);
      if (fraction.ok()) config->test_fraction = *fraction;
      status = fraction.ok() ? Status::Ok() : fraction.status();
    } else if (key == "min_region_population") {
      auto population = ParseDouble(value);
      if (population.ok()) config->min_region_population = *population;
      status = population.ok() ? Status::Ok() : population.status();
    } else if (key == "workload") {
      if (value == "pipeline") {
        config->workload = ScenarioWorkload::kPipeline;
      } else if (value == "stream") {
        config->workload = ScenarioWorkload::kStream;
      } else if (value == "serve") {
        config->workload = ScenarioWorkload::kServe;
      } else if (value == "multi_tenant") {
        config->workload = ScenarioWorkload::kMultiTenant;
      } else {
        status = InvalidArgumentError(
            "unknown workload '" + value +
            "' (expected pipeline|stream|serve|multi_tenant)");
      }
    } else if (key == "stream_batch") {
      auto batch = ParseInt(value);
      if (batch.ok()) config->stream_batch = *batch;
      status = batch.ok() ? Status::Ok() : batch.status();
    } else if (key == "stream_shards") {
      auto shards = ParseInt(value);
      if (shards.ok()) config->stream_shards = *shards;
      status = shards.ok() ? Status::Ok() : shards.status();
    } else if (key == "stream_refine_bound") {
      auto bound = ParseDouble(value);
      if (bound.ok()) config->stream_refine_bound = *bound;
      status = bound.ok() ? Status::Ok() : bound.status();
    } else if (key == "stream_warmup_pct") {
      auto pct = ParseInt(value);
      if (pct.ok()) config->stream_warmup_pct = *pct;
      status = pct.ok() ? Status::Ok() : pct.status();
    } else if (key == "stream_seal_records") {
      auto seal = ParseInt(value);
      if (seal.ok()) config->stream_seal_records = *seal;
      status = seal.ok() ? Status::Ok() : seal.status();
    } else if (key == "maintain_policy") {
      if (value == "caller") {
        config->maintain_policy = ScenarioMaintainPolicy::kCaller;
      } else if (value == "auto") {
        config->maintain_policy = ScenarioMaintainPolicy::kAuto;
      } else {
        status = InvalidArgumentError("unknown maintain_policy '" + value +
                                      "' (expected caller|auto)");
      }
    } else if (key == "seal_interval") {
      auto interval = ParseDouble(value);
      if (interval.ok()) config->seal_interval = *interval;
      status = interval.ok() ? Status::Ok() : interval.status();
    } else if (key == "drift_bound") {
      // The maintenance-policy spelling of stream_refine_bound: one field,
      // two names, so the caller loop and the background scheduler can
      // never disagree on the bound.
      auto bound = ParseDouble(value);
      if (bound.ok()) config->stream_refine_bound = *bound;
      status = bound.ok() ? Status::Ok() : bound.status();
    } else if (key == "wal_dir") {
      config->wal_dir = value;
    } else if (key == "checkpoint_interval") {
      auto interval = ParseInt(value);
      if (interval.ok()) config->checkpoint_interval = *interval;
      status = interval.ok() ? Status::Ok() : interval.status();
    } else if (key == "full_snapshot_interval") {
      auto interval = ParseInt(value);
      if (interval.ok()) config->full_snapshot_interval = *interval;
      status = interval.ok() ? Status::Ok() : interval.status();
    } else if (key == "fsync") {
      config->fsync = value;
    } else if (key == "retain_epochs") {
      auto retain = ParseInt(value);
      if (retain.ok()) config->retain_epochs = *retain;
      status = retain.ok() ? Status::Ok() : retain.status();
    } else if (key == "serve_readers") {
      auto readers = ParseInt(value);
      if (readers.ok()) config->serve_readers = *readers;
      status = readers.ok() ? Status::Ok() : readers.status();
    } else if (key == "serve_lookups") {
      auto lookups = ParseInt(value);
      if (lookups.ok()) config->serve_lookups = *lookups;
      status = lookups.ok() ? Status::Ok() : lookups.status();
    } else if (key == "serve_batch") {
      auto batch = ParseInt(value);
      if (batch.ok()) config->serve_batch = *batch;
      status = batch.ok() ? Status::Ok() : batch.status();
    } else if (key == "serve_read_pct") {
      auto pct = ParseInt(value);
      if (pct.ok()) config->serve_read_pct = *pct;
      status = pct.ok() ? Status::Ok() : pct.status();
    } else if (key == "serve_zipf") {
      auto zipf = ParseDouble(value);
      if (zipf.ok()) config->serve_zipf = *zipf;
      status = zipf.ok() ? Status::Ok() : zipf.status();
    } else if (key == "drift") {
      config->drift = value;
    } else if (key == "drift_hot_pct") {
      auto pct = ParseInt(value);
      if (pct.ok()) config->drift_hot_pct = *pct;
      status = pct.ok() ? Status::Ok() : pct.status();
    } else if (key == "drift_window_pct") {
      auto pct = ParseInt(value);
      if (pct.ok()) config->drift_window_pct = *pct;
      status = pct.ok() ? Status::Ok() : pct.status();
    } else if (key.rfind("tenant.", 0) == 0) {
      status = ParseTenantKey(key, value, config);
    } else {
      status = InvalidArgumentError("unknown scenario key '" + key + "'");
    }
    if (!status.ok()) {
      return InvalidArgumentError(
          StrFormat("scenario line %d: %s", line_number,
                    status.ToString().c_str()));
    }
  }
  return Status::Ok();
}

Status ValidateDriftKind(const std::string& key, const std::string& drift) {
  if (drift == "none" || drift == "hotspot" || drift == "flash_crowd") {
    return Status::Ok();
  }
  return InvalidArgumentError("scenario: unknown " + key + " '" + drift +
                              "' (expected none|hotspot|flash_crowd)");
}

Status ValidateScenario(const ScenarioConfig& config) {
  if (config.algorithms.empty()) {
    return InvalidArgumentError("scenario: no algorithms");
  }
  if (config.heights.empty()) {
    return InvalidArgumentError("scenario: no heights");
  }
  if (config.seeds.empty()) {
    return InvalidArgumentError("scenario: no seeds");
  }
  if (config.task < 0) {
    return InvalidArgumentError("scenario: task must be >= 0");
  }
  if (config.threads < 1) {
    return InvalidArgumentError("scenario: threads must be >= 1");
  }
  if (config.test_fraction <= 0.0 || config.test_fraction >= 1.0) {
    return InvalidArgumentError(
        "scenario: test_fraction must be in (0, 1)");
  }
  if (config.stream_batch < 1) {
    return InvalidArgumentError("scenario: stream_batch must be >= 1");
  }
  if (config.stream_shards < 1) {
    return InvalidArgumentError("scenario: stream_shards must be >= 1");
  }
  if (config.stream_warmup_pct < 1 || config.stream_warmup_pct > 99) {
    return InvalidArgumentError(
        "scenario: stream_warmup_pct must be in [1, 99]");
  }
  if (config.stream_seal_records < 0) {
    return InvalidArgumentError(
        "scenario: stream_seal_records must be >= 0");
  }
  // The stream, serve and multi_tenant workloads all drive the serving
  // layer; the keys below are meaningful for any of them and typos for
  // pipeline.
  const bool serving_workload =
      config.workload == ScenarioWorkload::kStream ||
      config.workload == ScenarioWorkload::kServe ||
      config.workload == ScenarioWorkload::kMultiTenant;
  if (serving_workload && config.min_region_population > 0.0) {
    // The serving layer has no region-merging post-process; silently
    // dropping the key would violate the engine's typo-proof stance.
    return InvalidArgumentError(
        "scenario: min_region_population is not supported with "
        "workload = stream or serve");
  }
  if (config.seal_interval < 0.0) {
    return InvalidArgumentError("scenario: seal_interval must be >= 0");
  }
  if (config.maintain_policy == ScenarioMaintainPolicy::kAuto &&
      !serving_workload) {
    // Background maintenance only exists on the serving path; silently
    // ignoring the key on a pipeline sweep would hide the typo.
    return InvalidArgumentError(
        "scenario: maintain_policy = auto requires workload = stream "
        "or serve");
  }
  if (config.seal_interval > 0.0 &&
      config.maintain_policy != ScenarioMaintainPolicy::kAuto) {
    return InvalidArgumentError(
        "scenario: seal_interval requires maintain_policy = auto (the "
        "caller loop seals by stream_seal_records)");
  }
  if (!config.wal_dir.empty() && !serving_workload) {
    // Durability only exists on the serving path; dropping the key on a
    // pipeline sweep would hide the typo.
    return InvalidArgumentError(
        "scenario: wal_dir requires workload = stream or serve");
  }
  if (config.full_snapshot_interval < 1) {
    return InvalidArgumentError(
        "scenario: full_snapshot_interval must be >= 1");
  }
  if (!ParseWalFsync(config.fsync).ok()) {
    return InvalidArgumentError("scenario: unknown fsync '" + config.fsync +
                                "' (expected none|batch|always)");
  }
  if (config.retain_epochs < 0) {
    return InvalidArgumentError("scenario: retain_epochs must be >= 0");
  }
  if (config.workload == ScenarioWorkload::kServe &&
      config.maintain_policy != ScenarioMaintainPolicy::kAuto) {
    // Serve workers never seal or refine — without the background
    // scheduler nothing would, and lookups would serve epoch 0 forever.
    return InvalidArgumentError(
        "scenario: workload = serve requires maintain_policy = auto "
        "(the background scheduler owns maintenance; workers only "
        "look up and ingest)");
  }
  if (config.serve_readers < 1) {
    return InvalidArgumentError("scenario: serve_readers must be >= 1");
  }
  if (config.serve_lookups < 1) {
    return InvalidArgumentError("scenario: serve_lookups must be >= 1");
  }
  if (config.serve_batch < 1) {
    return InvalidArgumentError("scenario: serve_batch must be >= 1");
  }
  if (config.serve_read_pct < 1 || config.serve_read_pct > 100) {
    return InvalidArgumentError(
        "scenario: serve_read_pct must be in [1, 100]");
  }
  if (config.serve_zipf < 0.0) {
    return InvalidArgumentError("scenario: serve_zipf must be >= 0");
  }
  FAIRIDX_RETURN_IF_ERROR(ValidateDriftKind("drift", config.drift));
  if (config.drift != "none" && !serving_workload) {
    // The drift generator permutes the ingest tail; a pipeline sweep has
    // no tail, so accepting the key would hide the typo.
    return InvalidArgumentError(
        "scenario: drift requires workload = stream, serve or "
        "multi_tenant");
  }
  if (config.drift_hot_pct < 1 || config.drift_hot_pct > 100) {
    return InvalidArgumentError(
        "scenario: drift_hot_pct must be in [1, 100]");
  }
  if (config.drift_window_pct < 0 || config.drift_window_pct > 100) {
    return InvalidArgumentError(
        "scenario: drift_window_pct must be in [0, 100]");
  }
  if (config.workload == ScenarioWorkload::kMultiTenant) {
    if (config.tenants.empty()) {
      return InvalidArgumentError(
          "scenario: workload = multi_tenant needs at least one "
          "tenant.<name>.* section");
    }
    if (config.maintain_policy != ScenarioMaintainPolicy::kAuto) {
      // Tenant workers only look up and ingest; the shared registry
      // scheduler owns every tenant's seal/refine cadence.
      return InvalidArgumentError(
          "scenario: workload = multi_tenant requires maintain_policy = "
          "auto (the shared registry scheduler owns maintenance)");
    }
  } else if (!config.tenants.empty()) {
    // tenant.* sections are meaningless outside multi_tenant; silently
    // ignoring them would violate the engine's typo-proof stance.
    return InvalidArgumentError(
        "scenario: tenant.<name>.* keys require workload = multi_tenant");
  }
  for (const ScenarioTenantConfig& tenant : config.tenants) {
    const std::string who = "scenario: tenant." + tenant.name + ".";
    if (tenant.height && *tenant.height < 0) {
      return InvalidArgumentError(who + "height must be >= 0");
    }
    if (tenant.batch && *tenant.batch < 1) {
      return InvalidArgumentError(who + "batch must be >= 1");
    }
    if (tenant.shards && *tenant.shards < 1) {
      return InvalidArgumentError(who + "shards must be >= 1");
    }
    if (tenant.warmup_pct &&
        (*tenant.warmup_pct < 1 || *tenant.warmup_pct > 99)) {
      return InvalidArgumentError(who + "warmup_pct must be in [1, 99]");
    }
    if (tenant.seal_records && *tenant.seal_records < 0) {
      return InvalidArgumentError(who + "seal_records must be >= 0");
    }
    if (tenant.seal_interval && *tenant.seal_interval < 0.0) {
      return InvalidArgumentError(who + "seal_interval must be >= 0");
    }
    if (tenant.retain_epochs && *tenant.retain_epochs < 0) {
      return InvalidArgumentError(who + "retain_epochs must be >= 0");
    }
    // lookups = 0 is the pure-ingest (noisy neighbor) tenant, so unlike
    // serve_lookups the per-tenant floor is 0, not 1.
    if (tenant.lookups && *tenant.lookups < 0) {
      return InvalidArgumentError(who + "lookups must be >= 0");
    }
    if (tenant.read_pct &&
        (*tenant.read_pct < 1 || *tenant.read_pct > 100)) {
      return InvalidArgumentError(who + "read_pct must be in [1, 100]");
    }
    if (tenant.zipf && *tenant.zipf < 0.0) {
      return InvalidArgumentError(who + "zipf must be >= 0");
    }
    if (tenant.drift) {
      FAIRIDX_RETURN_IF_ERROR(
          ValidateDriftKind("tenant." + tenant.name + ".drift",
                            *tenant.drift));
    }
    if (tenant.fsync && !ParseWalFsync(*tenant.fsync).ok()) {
      return InvalidArgumentError(who + "fsync must be none|batch|always");
    }
    if (tenant.full_snapshot_interval &&
        *tenant.full_snapshot_interval < 1) {
      return InvalidArgumentError(who +
                                  "full_snapshot_interval must be >= 1");
    }
  }
  return Status::Ok();
}

}  // namespace

std::vector<std::string> ScenarioKeyNames() {
  return std::vector<std::string>(std::begin(kScenarioKeys),
                                  std::end(kScenarioKeys));
}

std::vector<std::string> TenantScenarioKeyNames() {
  std::vector<std::string> keys;
  for (const char* sub : kTenantKeys) {
    keys.push_back(std::string("tenant.<name>.") + sub);
  }
  return keys;
}

std::vector<size_t> ScenarioDriftTailOrder(const std::string& drift,
                                           int hot_pct, int window_pct,
                                           const Grid& grid,
                                           const std::vector<int>& cell_ids,
                                           size_t warmup) {
  std::vector<size_t> order;
  if (warmup >= cell_ids.size()) return order;
  order.reserve(cell_ids.size() - warmup);
  for (size_t i = warmup; i < cell_ids.size(); ++i) order.push_back(i);
  const int cols = grid.cols();
  if (drift == "hotspot") {
    // The hot zone sweeps west -> east: arrivals are grouped into
    // column bands (each band drift_hot_pct percent of the sweep) and
    // emitted band by band. Stable, so within a band the original
    // arrival order is kept.
    const int bands = std::max(1, 100 / std::max(1, hot_pct));
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const int band_a = grid.ColOfCell(cell_ids[a]) * bands / cols;
      const int band_b = grid.ColOfCell(cell_ids[b]) * bands / cols;
      return band_a < band_b;
    });
  } else if (drift == "flash_crowd") {
    // The centered hot column band's records arrive as one contiguous
    // burst landing window_pct percent of the way into the tail;
    // everything else keeps its arrival order around the burst.
    const int hot_cols = std::max(1, cols * hot_pct / 100);
    const int hot_begin = (cols - hot_cols) / 2;
    std::vector<size_t> hot;
    std::vector<size_t> cold;
    for (size_t i : order) {
      const int col = grid.ColOfCell(cell_ids[i]);
      (col >= hot_begin && col < hot_begin + hot_cols ? hot : cold)
          .push_back(i);
    }
    const size_t burst_at =
        cold.size() * static_cast<size_t>(window_pct) / 100;
    order.clear();
    order.insert(order.end(), cold.begin(), cold.begin() + burst_at);
    order.insert(order.end(), hot.begin(), hot.end());
    order.insert(order.end(), cold.begin() + burst_at, cold.end());
  }
  // "none" (and anything else, which validation rejects upstream) keeps
  // the identity order.
  return order;
}

Result<ScenarioConfig> ParseScenarioText(const std::string& text,
                                         const std::string& include_dir) {
  ScenarioConfig config;
  FAIRIDX_RETURN_IF_ERROR(ParseInto(text, include_dir, 0, &config));
  FAIRIDX_RETURN_IF_ERROR(ValidateScenario(config));
  return config;
}

Result<ScenarioConfig> LoadScenarioFile(const std::string& path) {
  ScenarioConfig config;
  FAIRIDX_RETURN_IF_ERROR(IncludeFile(path, 0, &config));
  FAIRIDX_RETURN_IF_ERROR(ValidateScenario(config));
  if (config.name.empty()) config.name = path;
  return config;
}

std::vector<ScenarioRun> ExpandScenario(const ScenarioConfig& config) {
  std::vector<ScenarioRun> runs;
  runs.reserve(config.heights.size() * config.algorithms.size() *
               config.seeds.size());
  for (int height : config.heights) {
    for (PartitionAlgorithm algorithm : config.algorithms) {
      for (uint64_t seed : config.seeds) {
        runs.push_back(ScenarioRun{algorithm, height, seed});
      }
    }
  }
  return runs;
}

Result<Dataset> LoadScenarioDataset(const ScenarioConfig& config) {
  if (!config.csv.empty()) {
    return LoadEdgapCsvFile(config.csv, CsvDatasetOptions{});
  }
  if (config.city == "la" || config.city == "losangeles") {
    return GenerateEdgapCity(LosAngelesConfig());
  }
  if (config.city == "houston") {
    return GenerateEdgapCity(HoustonConfig());
  }
  return InvalidArgumentError("unknown city '" + config.city +
                              "' (expected la|houston)");
}

namespace {

Result<ScenarioRow> RunOnePipelinePoint(const ScenarioConfig& config,
                                        const Dataset& dataset,
                                        const Classifier& prototype,
                                        const ScenarioRun& run) {
  PipelineOptions options;
  options.algorithm = run.algorithm;
  options.height = run.height;
  options.task = config.task;
  options.num_threads = config.threads;
  options.test_fraction = config.test_fraction;
  options.split_seed = run.seed;
  options.min_region_population = config.min_region_population;
  FAIRIDX_ASSIGN_OR_RETURN(PipelineRunResult result,
                           RunPipeline(dataset, prototype, options));
  ScenarioRow row;
  row.run = run;
  row.regions = result.final_model.eval.num_neighborhoods;
  row.train_ence = result.final_model.eval.train_ence;
  row.test_ence = result.final_model.eval.test_ence;
  row.train_accuracy = result.final_model.eval.train_accuracy;
  row.test_accuracy = result.final_model.eval.test_accuracy;
  row.test_miscalibration = result.final_model.eval.test_miscalibration;
  row.partition_seconds = result.partition_seconds;
  row.model_fits = result.partition_stage_fits;
  return row;
}

// The shared stream/serve preamble: one model fit scores every record,
// and the record stream splits into a warmup prefix (builds the initial
// partition) and the ingest tail.
struct StreamFeed {
  AggregateBatch all;
  /// Records in the warmup prefix ([0, warmup) of `all`).
  size_t warmup = 0;
  /// Total records (== all.cell_ids.size()).
  size_t total = 0;
};

Result<StreamFeed> MakeStreamFeed(const ScenarioConfig& config,
                                  const Dataset& dataset,
                                  const Classifier& prototype,
                                  const ScenarioRun& run) {
  if (config.task < 0 || config.task >= dataset.num_tasks()) {
    return InvalidArgumentError("scenario: task out of range for dataset");
  }
  Rng rng(run.seed);
  FAIRIDX_ASSIGN_OR_RETURN(
      TrainTestSplit split,
      MakeStratifiedSplit(dataset.labels(config.task),
                          config.test_fraction, rng));
  FAIRIDX_ASSIGN_OR_RETURN(
      TrainedEvaluation trained,
      TrainOnBaseGrid(dataset, split, prototype, EvalOptions{}));
  StreamFeed feed;
  feed.all.cell_ids = dataset.base_cells();
  feed.all.labels = dataset.labels(config.task);
  feed.all.scores = trained.scores;
  feed.total = dataset.num_records();
  feed.warmup = std::max<size_t>(
      1, feed.total * static_cast<size_t>(config.stream_warmup_pct) / 100);
  if (config.drift != "none" && feed.warmup < feed.total) {
    // Drift generator: permute the ingest tail (the warmup prefix is
    // untouched). A pure permutation keeps the record multiset — and
    // therefore every final sealed sum — identical to the undrifted
    // stream; only the arrival ORDER (and hence intermediate epochs and
    // refine decisions) changes.
    const std::vector<size_t> order = ScenarioDriftTailOrder(
        config.drift, config.drift_hot_pct, config.drift_window_pct,
        dataset.grid(), feed.all.cell_ids, feed.warmup);
    AggregateBatch tail;
    tail.cell_ids.reserve(order.size());
    for (size_t i : order) {
      tail.Append(feed.all.cell_ids[i], feed.all.labels[i],
                  feed.all.scores[i]);
    }
    std::copy(tail.cell_ids.begin(), tail.cell_ids.end(),
              feed.all.cell_ids.begin() + feed.warmup);
    std::copy(tail.labels.begin(), tail.labels.end(),
              feed.all.labels.begin() + feed.warmup);
    std::copy(tail.scores.begin(), tail.scores.end(),
              feed.all.scores.begin() + feed.warmup);
  }
  return feed;
}

// The FairIndexService configuration both serving workloads share: the
// sweep point's build/store/refine knobs, the per-point WAL
// subdirectory, and the maintain_policy = auto scheduler mapping.
Result<FairIndexServiceOptions> MakeServiceOptions(
    const ScenarioConfig& config, const ScenarioRun& run) {
  FairIndexServiceOptions options;
  options.algorithm = PartitionAlgorithmName(run.algorithm);
  options.build.height = run.height;
  options.build.task = config.task;
  options.build.num_threads = config.threads;
  options.store.num_shards = config.stream_shards;
  options.store.num_threads = config.threads;
  options.refine.drift_bound = config.stream_refine_bound;
  if (!config.wal_dir.empty()) {
    // One subdirectory per sweep point: concurrent points must never
    // interleave their logs.
    options.durability.wal_dir =
        config.wal_dir + "/" + PartitionAlgorithmName(run.algorithm) +
        "-h" + std::to_string(run.height) + "-s" +
        std::to_string(run.seed);
    options.durability.checkpoint_interval = config.checkpoint_interval;
    options.durability.full_snapshot_interval =
        config.full_snapshot_interval;
    FAIRIDX_ASSIGN_OR_RETURN(options.durability.fsync,
                             ParseWalFsync(config.fsync));
  }
  if (config.maintain_policy == ScenarioMaintainPolicy::kAuto) {
    options.auto_maintain = true;
    // stream_seal_records = 0 means "every batch" in caller mode; for
    // the scheduler that is a 1-record cadence — unless seal_interval
    // was given, in which case 0 disables the record cadence so the
    // wall clock alone governs (interval-only policies stay
    // expressible).
    options.maintain.seal_records =
        config.stream_seal_records > 0
            ? config.stream_seal_records
            : (config.seal_interval > 0.0 ? 0 : 1);
    options.maintain.seal_interval_seconds = config.seal_interval;
    options.maintain.drift_bound = config.stream_refine_bound >= 0.0
                                       ? config.stream_refine_bound
                                       : -1.0;
    options.maintain.poll_interval_seconds = 0.002;
    options.maintain.retain_epochs = config.retain_epochs;
  }
  return options;
}

// One serving-layer sweep point: one model fit scores every record, a
// warmup prefix builds the maintained partition, and the tail streams
// through a FairIndexService (ingest batches, epoch seals, drift-bounded
// refines) — the scenario-file form of `fairidx_cli stream`. With
// maintain_policy = auto the service's background scheduler owns the
// seal/refine cadence and the loop below only ingests.
Result<ScenarioStreamRow> RunOneStreamPoint(const ScenarioConfig& config,
                                            const Dataset& dataset,
                                            const Classifier& prototype,
                                            const ScenarioRun& run) {
  FAIRIDX_ASSIGN_OR_RETURN(StreamFeed feed,
                           MakeStreamFeed(config, dataset, prototype, run));
  FAIRIDX_ASSIGN_OR_RETURN(FairIndexServiceOptions service_options,
                           MakeServiceOptions(config, run));
  const bool refine = config.stream_refine_bound >= 0.0;
  const bool auto_maintain =
      config.maintain_policy == ScenarioMaintainPolicy::kAuto;

  const auto start = std::chrono::steady_clock::now();
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<FairIndexService> service,
      FairIndexService::Create(dataset.grid(),
                               feed.all.Slice(0, feed.warmup),
                               service_options));

  for (size_t next = feed.warmup; next < feed.total;) {
    const size_t end = std::min(
        feed.total, next + static_cast<size_t>(config.stream_batch));
    FAIRIDX_RETURN_IF_ERROR(
        service->Ingest(feed.all.Slice(next, end)).status());
    next = end;
    if (auto_maintain) continue;  // The background scheduler maintains.
    if (service->store().pending_records() >= config.stream_seal_records) {
      if (refine) {
        FAIRIDX_RETURN_IF_ERROR(service->MaybeRefine().status());
      } else {
        FAIRIDX_RETURN_IF_ERROR(service->Seal().status());
      }
      if (config.retain_epochs > 0) {
        service->ApplyRetention(config.retain_epochs);
      }
    }
  }
  // Quiesce before the final audit: stop the scheduler (joins any
  // in-flight pass), then seal the tail.
  if (auto_maintain) service->StopMaintenance();
  FAIRIDX_RETURN_IF_ERROR(service->Seal().status());
  const std::vector<RegionAggregate> final_regions =
      service->QueryRegions();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ScenarioStreamRow row;
  row.run = run;
  row.regions = static_cast<int>(final_regions.size());
  row.records = service->store().num_records();
  row.epochs = service->store().epoch();
  row.resplits = service->total_resplits();
  row.published_patched = service->publications_patched();
  row.published_fallback = service->publications_fallback();
  row.final_ence = RegionEnce(final_regions).ence;
  row.stream_seconds =
      std::chrono::duration<double>(elapsed).count();
  return row;
}

// Percentile of an ASCENDING sample vector with linear interpolation
// between the two nearest ranks (the methodology docs/benchmarking.md
// describes; empty input yields 0).
double PercentileUs(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(sorted.size() - 1, lo + 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo);
}

// Pre-generates `count` lookup points with Zipf-skewed cell popularity:
// hotness ranks are a seed-deterministic shuffle of the cells, rank r is
// drawn with probability proportional to 1/(r+1)^s through an
// inverse-CDF table, and each point lands uniformly inside its cell.
// s = 0 degenerates to uniform cells. Points are generated BEFORE the
// timed loop so the measurement covers the lookup, not the generator.
std::vector<Point> MakeZipfPoints(const Grid& grid, double s,
                                  long long count, Rng& rng) {
  const int cells = grid.num_cells();
  std::vector<double> cdf(static_cast<size_t>(cells));
  double total = 0.0;
  for (int r = 0; r < cells; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[static_cast<size_t>(r)] = total;
  }
  std::vector<int> rank_to_cell(static_cast<size_t>(cells));
  std::iota(rank_to_cell.begin(), rank_to_cell.end(), 0);
  rng.Shuffle(rank_to_cell);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(count));
  for (long long i = 0; i < count; ++i) {
    const double u = rng.NextDouble() * total;
    const size_t rank = std::min(
        static_cast<size_t>(cells - 1),
        static_cast<size_t>(std::lower_bound(cdf.begin(), cdf.end(), u) -
                            cdf.begin()));
    const int cell = rank_to_cell[rank];
    const BoundingBox box =
        grid.CellBounds(grid.RowOfCell(cell), grid.ColOfCell(cell));
    points.push_back(Point{rng.Uniform(box.min_x, box.max_x),
                           rng.Uniform(box.min_y, box.max_y)});
  }
  return points;
}

// One serve worker's pre-built traffic and its measurements.
struct ServeWorker {
  /// Pre-generated lookup points (serve_lookups of them).
  std::vector<Point> points;
  /// This worker's round-robin share of the ingest tail.
  std::vector<AggregateBatch> write_batches;
  /// Steady-state LookupMany call latencies (first 10% of calls are
  /// cache/JIT warmup and excluded).
  std::vector<double> latencies_us;
  long long lookups = 0;
  Status status = Status::Ok();
};

// One serve sweep point: the stream preamble builds the service
// (maintain_policy = auto, so the background scheduler owns seals and
// refines), then serve_readers threads run a closed-loop mix of batched
// point lookups and tail ingest against it. Closed loop: each worker
// keeps exactly one operation in flight, so a slow lookup delays only
// that worker's next send — the latency histogram measures service
// time without the coordinated-omission distortion an open-loop
// generator would need correcting for (see docs/benchmarking.md).
Result<ScenarioServeRow> RunOneServePoint(const ScenarioConfig& config,
                                          const Dataset& dataset,
                                          const Classifier& prototype,
                                          const ScenarioRun& run) {
  FAIRIDX_ASSIGN_OR_RETURN(StreamFeed feed,
                           MakeStreamFeed(config, dataset, prototype, run));
  FAIRIDX_ASSIGN_OR_RETURN(FairIndexServiceOptions service_options,
                           MakeServiceOptions(config, run));
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<FairIndexService> service,
      FairIndexService::Create(dataset.grid(),
                               feed.all.Slice(0, feed.warmup),
                               service_options));

  // Everything random or allocation-heavy happens BEFORE the clock.
  const int workers = config.serve_readers;
  std::vector<ServeWorker> state(static_cast<size_t>(workers));
  std::vector<Rng> coins;
  coins.reserve(static_cast<size_t>(workers));
  Rng base(run.seed);
  for (int w = 0; w < workers; ++w) {
    Rng point_rng = base.Fork(static_cast<uint64_t>(2 * w + 1));
    state[static_cast<size_t>(w)].points = MakeZipfPoints(
        dataset.grid(), config.serve_zipf, config.serve_lookups, point_rng);
    coins.push_back(base.Fork(static_cast<uint64_t>(2 * w + 2)));
  }
  {
    // Round-robin the ingest tail across workers: every record is owned
    // by exactly one thread and drained even if its coin never says
    // "write", so the final record count is deterministic.
    size_t next = feed.warmup;
    int w = 0;
    while (next < feed.total) {
      const size_t end = std::min(
          feed.total, next + static_cast<size_t>(config.stream_batch));
      state[static_cast<size_t>(w % workers)].write_batches.push_back(
          feed.all.Slice(next, end));
      next = end;
      ++w;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w]() {
      ServeWorker& me = state[static_cast<size_t>(w)];
      Rng& coin = coins[static_cast<size_t>(w)];
      const size_t batch = static_cast<size_t>(config.serve_batch);
      const size_t calls = (me.points.size() + batch - 1) / batch;
      const size_t warmup_calls = calls / 10;
      std::vector<PointLookupResult> out(batch);
      size_t write_next = 0;
      size_t call = 0;
      for (size_t off = 0; off < me.points.size();) {
        const bool write =
            write_next < me.write_batches.size() &&
            static_cast<int>(coin.NextBounded(100)) >= config.serve_read_pct;
        if (write) {
          Result<long long> seq =
              service->Ingest(std::move(me.write_batches[write_next]));
          if (!seq.ok()) {
            me.status = seq.status();
            return;
          }
          ++write_next;
          continue;
        }
        const size_t len = std::min(batch, me.points.size() - off);
        const auto t0 = std::chrono::steady_clock::now();
        service->LookupMany(Span<Point>(me.points.data() + off, len),
                            out.data());
        const auto t1 = std::chrono::steady_clock::now();
        if (call >= warmup_calls) {
          me.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        ++call;
        me.lookups += static_cast<long long>(len);
        off += len;
      }
      // Drain the leftover tail share.
      for (; write_next < me.write_batches.size(); ++write_next) {
        Result<long long> seq =
            service->Ingest(std::move(me.write_batches[write_next]));
        if (!seq.ok()) {
          me.status = seq.status();
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Quiesce (join any in-flight maintenance pass), seal the tail, then
  // audit the final published state.
  service->StopMaintenance();
  FAIRIDX_RETURN_IF_ERROR(service->Seal().status());
  std::vector<double> latencies;
  long long lookups = 0;
  for (ServeWorker& worker : state) {
    FAIRIDX_RETURN_IF_ERROR(worker.status);
    lookups += worker.lookups;
    latencies.insert(latencies.end(), worker.latencies_us.begin(),
                     worker.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const std::vector<RegionAggregate> final_regions = service->QueryRegions();

  ScenarioServeRow row;
  row.run = run;
  row.regions = static_cast<int>(final_regions.size());
  row.records = service->store().num_records();
  row.epochs = service->store().epoch();
  row.resplits = service->total_resplits();
  row.lookups = lookups;
  row.serve_seconds = std::chrono::duration<double>(elapsed).count();
  row.read_qps = row.serve_seconds > 0.0
                     ? static_cast<double>(lookups) / row.serve_seconds
                     : 0.0;
  row.p50_us = PercentileUs(latencies, 50.0);
  row.p95_us = PercentileUs(latencies, 95.0);
  row.p99_us = PercentileUs(latencies, 99.0);
  row.publish_stall_us = service->max_publish_stall_us();
  row.checkpoint_stall_us = service->max_checkpoint_stall_us();
  row.final_ence = RegionEnce(final_regions).ence;
  return row;
}

// The per-tenant effective view: the top-level config with this
// tenant's overrides applied. Every key a tenant does not name inherits
// the scenario-wide value, so the fleet defaults are stated once.
ScenarioConfig TenantEffectiveConfig(const ScenarioConfig& base,
                                     const ScenarioTenantConfig& tenant) {
  ScenarioConfig cfg = base;
  if (tenant.city) {
    cfg.city = *tenant.city;
    cfg.csv.clear();
  }
  if (tenant.batch) cfg.stream_batch = *tenant.batch;
  if (tenant.shards) cfg.stream_shards = *tenant.shards;
  if (tenant.warmup_pct) cfg.stream_warmup_pct = *tenant.warmup_pct;
  if (tenant.seal_records) cfg.stream_seal_records = *tenant.seal_records;
  if (tenant.seal_interval) cfg.seal_interval = *tenant.seal_interval;
  if (tenant.drift_bound) cfg.stream_refine_bound = *tenant.drift_bound;
  if (tenant.retain_epochs) cfg.retain_epochs = *tenant.retain_epochs;
  if (tenant.lookups) cfg.serve_lookups = *tenant.lookups;
  if (tenant.read_pct) cfg.serve_read_pct = *tenant.read_pct;
  if (tenant.zipf) cfg.serve_zipf = *tenant.zipf;
  if (tenant.drift) cfg.drift = *tenant.drift;
  if (tenant.fsync) cfg.fsync = *tenant.fsync;
  if (tenant.checkpoint_interval) {
    cfg.checkpoint_interval = *tenant.checkpoint_interval;
  }
  if (tenant.full_snapshot_interval) {
    cfg.full_snapshot_interval = *tenant.full_snapshot_interval;
  }
  return cfg;
}

ScenarioRun TenantEffectiveRun(const ScenarioRun& base,
                               const ScenarioTenantConfig& tenant) {
  ScenarioRun run = base;
  if (tenant.algorithm) {
    // Validated at parse time; value() cannot fail here.
    run.algorithm = ParsePartitionAlgorithm(*tenant.algorithm).value();
  }
  if (tenant.height) run.height = *tenant.height;
  if (tenant.seed) run.seed = *tenant.seed;
  return run;
}

// One multi-tenant worker's pre-built traffic and measurements (the
// ServeWorker shape, plus the per-tenant ingest throughput readout).
struct TenantWorker {
  std::vector<Point> points;
  std::vector<AggregateBatch> write_batches;
  std::vector<double> latencies_us;
  long long lookups = 0;
  long long tail_records = 0;
  double seconds = 0.0;
  Status status = Status::Ok();
};

// One multi-tenant sweep point: every tenant.<name>.* section becomes a
// tenant of ONE TenantRegistry — its own grid/store/partition/WAL
// namespace and per-tenant MaintenancePolicy, all maintained by the one
// shared round-robin scheduler thread — and one worker thread per
// tenant runs the serve-style closed loop against it (a tenant with
// lookups = 0 just ingests flat out: the noisy neighbor). With a
// wal_dir the point recovers-or-creates per tenant, resuming each
// recovered tenant at the first record it never accepted; a tenant
// whose recovery fails comes back as a "degraded" row while the others
// keep serving.
Result<std::vector<ScenarioTenantRow>> RunOneMultiTenantPoint(
    const ScenarioConfig& config, const Dataset& dataset,
    const Classifier& prototype, const ScenarioRun& run) {
  const size_t n = config.tenants.size();
  std::vector<ScenarioConfig> effs;
  std::vector<ScenarioRun> eff_runs;
  std::vector<StreamFeed> feeds;
  std::vector<TenantSpec> specs;
  std::vector<Grid> grids;
  std::vector<Dataset> owned;
  owned.reserve(n);  // Pointers into `owned` must survive push_back.
  effs.reserve(n);
  eff_runs.reserve(n);
  feeds.reserve(n);
  specs.reserve(n);
  grids.reserve(n);
  for (const ScenarioTenantConfig& tenant : config.tenants) {
    effs.push_back(TenantEffectiveConfig(config, tenant));
    eff_runs.push_back(TenantEffectiveRun(run, tenant));
    const ScenarioConfig& eff = effs.back();
    const Dataset* data = &dataset;
    if (tenant.city) {
      // A city override gives the tenant its own dataset AND grid shape.
      FAIRIDX_ASSIGN_OR_RETURN(Dataset tenant_dataset,
                               LoadScenarioDataset(eff));
      owned.push_back(std::move(tenant_dataset));
      data = &owned.back();
    }
    FAIRIDX_ASSIGN_OR_RETURN(
        StreamFeed feed,
        MakeStreamFeed(eff, *data, prototype, eff_runs.back()));
    // The registry owns the WAL namespace (<point root>/<tenant>), so
    // MakeServiceOptions must not also carve a per-point subdirectory.
    ScenarioConfig options_cfg = eff;
    options_cfg.wal_dir.clear();
    FAIRIDX_ASSIGN_OR_RETURN(FairIndexServiceOptions options,
                             MakeServiceOptions(options_cfg, eff_runs.back()));
    if (!config.wal_dir.empty()) {
      options.durability.checkpoint_interval = eff.checkpoint_interval;
      options.durability.full_snapshot_interval = eff.full_snapshot_interval;
      FAIRIDX_ASSIGN_OR_RETURN(options.durability.fsync,
                               ParseWalFsync(eff.fsync));
    }
    grids.push_back(data->grid());
    specs.push_back(TenantSpec{tenant.name, data->grid(),
                               feed.all.Slice(0, feed.warmup),
                               std::move(options)});
    feeds.push_back(std::move(feed));
  }

  // One durability root per sweep point (the registry appends /<tenant>
  // per tenant), same naming as the single-tenant workloads.
  TenantRegistryOptions registry_options;
  if (!config.wal_dir.empty()) {
    registry_options.wal_dir =
        config.wal_dir + "/" + PartitionAlgorithmName(run.algorithm) +
        "-h" + std::to_string(run.height) + "-s" + std::to_string(run.seed);
  }
  // Recover-or-create when durable (a rerun over the same root resumes
  // the previous run's tenants; a corrupt tenant degrades instead of
  // failing the point), plain create otherwise.
  FAIRIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<TenantRegistry> registry,
      registry_options.wal_dir.empty()
          ? TenantRegistry::Create(std::move(specs), registry_options)
          : TenantRegistry::Recover(std::move(specs), registry_options));

  // Pre-build every worker's traffic before any clock starts. A
  // recovered tenant resumes at the first record it never accepted
  // (records stream in feed order and every accepted record was logged
  // exactly once, so its store count IS the resume position).
  std::vector<TenantWorker> workers(n);
  std::vector<Rng> coins;
  coins.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const ScenarioConfig& eff = effs[i];
    Rng base(eff_runs[i].seed);
    Rng point_rng = base.Fork(1);
    coins.push_back(base.Fork(2));
    const auto service = registry->tenant(config.tenants[i].name);
    if (!service.ok()) continue;  // Degraded: no traffic, a status row.
    workers[i].points =
        MakeZipfPoints(grids[i], eff.serve_zipf, eff.serve_lookups,
                       point_rng);
    size_t next = feeds[i].warmup;
    const long long accepted = (*service)->store().num_records();
    next = std::min(
        feeds[i].total,
        std::max(next, static_cast<size_t>(std::max(0LL, accepted))));
    while (next < feeds[i].total) {
      const size_t end = std::min(
          feeds[i].total, next + static_cast<size_t>(eff.stream_batch));
      workers[i].write_batches.push_back(feeds[i].all.Slice(next, end));
      workers[i].tail_records += static_cast<long long>(end - next);
      next = end;
    }
  }

  FAIRIDX_RETURN_IF_ERROR(registry->StartMaintenance());

  // One worker thread per serving tenant: the serve-style closed loop
  // (batched LookupMany mixed with registry ingest on the read-pct
  // coin; leftovers always drain), so every tenant's latency histogram
  // measures ITS service time while the neighbors compete for the
  // shared scheduler and CPU — the cross-tenant interference readout.
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!registry->tenant(config.tenants[i].name).ok()) continue;
    threads.emplace_back([&, i]() {
      TenantWorker& me = workers[i];
      const ScenarioConfig& eff = effs[i];
      const std::string& name = config.tenants[i].name;
      FairIndexService* service =
          registry->tenant(name).value();  // Checked above.
      Rng& coin = coins[i];
      const size_t batch = static_cast<size_t>(config.serve_batch);
      const size_t calls = (me.points.size() + batch - 1) / batch;
      const size_t warmup_calls = calls / 10;
      std::vector<PointLookupResult> out(batch);
      const auto t_begin = std::chrono::steady_clock::now();
      size_t write_next = 0;
      size_t call = 0;
      for (size_t off = 0; off < me.points.size();) {
        const bool write =
            write_next < me.write_batches.size() &&
            static_cast<int>(coin.NextBounded(100)) >= eff.serve_read_pct;
        if (write) {
          Result<long long> seq =
              registry->Ingest(name, std::move(me.write_batches[write_next]));
          if (!seq.ok()) {
            me.status = seq.status();
            return;
          }
          ++write_next;
          continue;
        }
        const size_t len = std::min(batch, me.points.size() - off);
        const auto t0 = std::chrono::steady_clock::now();
        service->LookupMany(Span<Point>(me.points.data() + off, len),
                            out.data());
        const auto t1 = std::chrono::steady_clock::now();
        if (call >= warmup_calls) {
          me.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        ++call;
        me.lookups += static_cast<long long>(len);
        off += len;
      }
      // Drain the leftover tail (and the whole tail, for a pure
      // ingester with no lookup points).
      for (; write_next < me.write_batches.size(); ++write_next) {
        Result<long long> seq =
            registry->Ingest(name, std::move(me.write_batches[write_next]));
        if (!seq.ok()) {
          me.status = seq.status();
          return;
        }
      }
      me.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t_begin)
                       .count();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Quiesce the shared scheduler (joins any in-flight pass) before the
  // final audit seals.
  registry->StopMaintenance();

  const std::vector<TenantStatus> statuses = registry->statuses();
  std::vector<ScenarioTenantRow> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ScenarioTenantRow row;
    row.run = eff_runs[i];
    row.tenant = config.tenants[i].name;
    if (statuses[i].state == TenantState::kDegraded) {
      row.state = "degraded";
      rows.push_back(std::move(row));
      continue;
    }
    FAIRIDX_RETURN_IF_ERROR(workers[i].status);
    row.state = statuses[i].recovered ? "recovered" : "serving";
    FairIndexService* service =
        registry->tenant(config.tenants[i].name).value();
    FAIRIDX_RETURN_IF_ERROR(service->Seal().status());
    const std::vector<RegionAggregate> final_regions =
        service->QueryRegions();
    row.regions = static_cast<int>(final_regions.size());
    row.records = service->store().num_records();
    row.epochs = service->store().epoch();
    row.resplits = service->total_resplits();
    row.lookups = workers[i].lookups;
    std::sort(workers[i].latencies_us.begin(),
              workers[i].latencies_us.end());
    row.p50_us = PercentileUs(workers[i].latencies_us, 50.0);
    row.p99_us = PercentileUs(workers[i].latencies_us, 99.0);
    if (workers[i].seconds > 0.0) {
      row.read_qps =
          static_cast<double>(workers[i].lookups) / workers[i].seconds;
      row.ingest_rps =
          static_cast<double>(workers[i].tail_records) / workers[i].seconds;
    }
    row.final_ence = RegionEnce(final_regions).ence;
    rows.push_back(std::move(row));
  }
  return rows;
}

// Executes `fn` over every sweep point on the shared ThreadPool (at most
// config.threads at once), preserving sweep order. Each point is
// independent and internally deterministic, so the row vector is
// bit-identical at any thread count; on failures the error of the
// EARLIEST failing point (in sweep order) is returned, also regardless
// of thread count.
template <typename Row, typename Fn>
Result<std::vector<Row>> RunSweepPoints(const ScenarioConfig& config,
                                        const std::vector<ScenarioRun>& runs,
                                        Fn fn) {
  std::vector<Result<Row>> results(
      runs.size(), Result<Row>(InternalError("sweep point not executed")));
  ThreadPool::Shared().ParallelFor(
      runs.size(), config.threads,
      [&](size_t i) { results[i] = fn(runs[i]); });
  std::vector<Row> rows;
  rows.reserve(runs.size());
  for (Result<Row>& result : results) {
    if (!result.ok()) return result.status();
    rows.push_back(std::move(result).value());
  }
  return rows;
}

}  // namespace

Result<ScenarioReport> RunScenario(const ScenarioConfig& config,
                                   const Dataset& dataset) {
  FAIRIDX_RETURN_IF_ERROR(ValidateScenario(config));
  const std::unique_ptr<Classifier> prototype =
      MakeClassifier(config.classifier);
  const std::vector<ScenarioRun> runs = ExpandScenario(config);
  ScenarioReport report;
  report.workload = config.workload;
  if (config.workload == ScenarioWorkload::kMultiTenant) {
    // Each sweep point yields one row PER TENANT; flatten in sweep
    // order so tenants stay grouped by point, section-ordered within.
    FAIRIDX_ASSIGN_OR_RETURN(
        std::vector<std::vector<ScenarioTenantRow>> groups,
        (RunSweepPoints<std::vector<ScenarioTenantRow>>(
            config, runs, [&](const ScenarioRun& run) {
              return RunOneMultiTenantPoint(config, dataset, *prototype,
                                            run);
            })));
    for (std::vector<ScenarioTenantRow>& group : groups) {
      for (ScenarioTenantRow& row : group) {
        report.tenant_rows.push_back(std::move(row));
      }
    }
  } else if (config.workload == ScenarioWorkload::kServe) {
    FAIRIDX_ASSIGN_OR_RETURN(
        report.serve_rows,
        (RunSweepPoints<ScenarioServeRow>(
            config, runs, [&](const ScenarioRun& run) {
              return RunOneServePoint(config, dataset, *prototype, run);
            })));
  } else if (config.workload == ScenarioWorkload::kStream) {
    FAIRIDX_ASSIGN_OR_RETURN(
        report.stream_rows,
        (RunSweepPoints<ScenarioStreamRow>(
            config, runs, [&](const ScenarioRun& run) {
              return RunOneStreamPoint(config, dataset, *prototype, run);
            })));
  } else {
    FAIRIDX_ASSIGN_OR_RETURN(
        report.rows,
        (RunSweepPoints<ScenarioRow>(
            config, runs, [&](const ScenarioRun& run) {
              return RunOnePipelinePoint(config, dataset, *prototype, run);
            })));
  }
  return report;
}

Result<ScenarioReport> RunScenario(const ScenarioConfig& config) {
  FAIRIDX_ASSIGN_OR_RETURN(Dataset dataset, LoadScenarioDataset(config));
  return RunScenario(config, dataset);
}

}  // namespace fairidx
