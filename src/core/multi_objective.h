// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Multi-Objective Fair KD-tree (Section 4.3): trains one classifier per
// task, aggregates per-record residuals v_tot[u] = sum_i alpha_i(s^i_u -
// y^i_u) (Eq. 11-12), and builds a single Fair KD-tree whose splits balance
// residual mass (Eq. 13-14), producing one neighborhood partition that is
// fair for all tasks at once.

#ifndef FAIRIDX_CORE_MULTI_OBJECTIVE_H_
#define FAIRIDX_CORE_MULTI_OBJECTIVE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/split.h"
#include "index/kd_tree.h"
#include "ml/classifier.h"

namespace fairidx {

/// Options for the multi-objective build.
struct MultiObjectiveOptions {
  int height = 6;
  /// Task indices to balance; empty means all of the dataset's tasks.
  std::vector<int> tasks;
  /// Task priorities; must match `tasks` in size and sum to 1. Empty means
  /// equal weights (the paper's experiments use alpha = 0.5 for two tasks).
  std::vector<double> alphas;
  NeighborhoodEncoding encoding = NeighborhoodEncoding::kNumericId;
  /// Eq. 13 as printed carries an extra |L| weighting relative to Eq. 9;
  /// set true for the Eq. 9-consistent form (see DESIGN.md).
  bool use_eq9_weighting = false;
  /// Per-task fits (design-matrix assembly + model training + scoring) run
  /// concurrently on the shared ThreadPool when > 1. Residuals are
  /// alpha-combined in task order afterwards, so v_tot is bit-identical at
  /// any thread count.
  int num_threads = 1;
};

/// Result of the multi-objective build.
struct MultiObjectiveResult {
  PartitionResult partition;
  /// Per-record aggregated residuals v_tot used for splitting.
  std::vector<double> residuals;
  /// |sum of v_tot| inside each leaf region (Eq. 13's inner term), in leaf
  /// order — the per-partition balance report, evaluated with one batched
  /// aggregate query (fairness/region_metrics.h).
  std::vector<double> region_abs_residual_mass;
};

/// Computes v_tot over training records: one classifier per task is fitted
/// on `split.train_indices` (with base-grid cells as the location feature),
/// and residuals are alpha-combined. Exposed separately for tests.
Result<std::vector<double>> ComputeMultiObjectiveResiduals(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const MultiObjectiveOptions& options);

/// Runs the full multi-objective build (Eq. 11-14). The input dataset is
/// not modified.
Result<MultiObjectiveResult> BuildMultiObjectiveFairKdTree(
    const Dataset& dataset, const TrainTestSplit& split,
    const Classifier& prototype, const MultiObjectiveOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_MULTI_OBJECTIVE_H_
