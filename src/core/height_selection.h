// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Automatic tree-height selection. The paper shows (Theorem 2, Fig. 7) that
// finer partitions trade fairness for spatial granularity; a deployment
// must therefore pick the finest height whose unfairness stays within
// budget. SelectHeight sweeps heights, runs the full pipeline at each, and
// returns the largest height whose train ENCE is at most the budget.

#ifndef FAIRIDX_CORE_HEIGHT_SELECTION_H_
#define FAIRIDX_CORE_HEIGHT_SELECTION_H_

#include <vector>

#include "core/pipeline.h"

namespace fairidx {

/// Options for the height sweep.
struct HeightSelectionOptions {
  /// Heights 0..max_height are evaluated.
  int max_height = 10;
  /// Maximum acceptable train ENCE.
  double ence_budget = 0.05;
  /// Pipeline configuration applied at every height (its `height` field is
  /// overwritten by the sweep).
  PipelineOptions pipeline;
};

/// One sweep point.
struct HeightSweepPoint {
  int height = 0;
  int num_regions = 0;
  double train_ence = 0.0;
  double test_ence = 0.0;
  double test_accuracy = 0.0;
};

/// Sweep outcome.
struct HeightSelectionResult {
  /// Largest height with train ENCE <= budget (heights are swept in
  /// ascending order; ENCE is monotone in expectation but not guaranteed,
  /// so the largest qualifying height is reported).
  int selected_height = 0;
  /// True if some height met the budget; false means even height 0 misses
  /// it and selected_height is 0 by convention.
  bool budget_met = false;
  std::vector<HeightSweepPoint> sweep;
};

/// Runs the sweep. The dataset is unchanged. With pipeline.num_threads > 1
/// the sweep points run concurrently on the shared thread pool
/// (common/thread_pool.h); the selection is identical at any thread count.
Result<HeightSelectionResult> SelectHeight(
    const Dataset& dataset, const Classifier& prototype,
    const HeightSelectionOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_CORE_HEIGHT_SELECTION_H_
