// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Calibration primitives (Section 2.2 of the paper). For a model h over a
// set of records, e(h) is the mean confidence score and o(h) the true
// fraction of positives; |e - o| is the absolute miscalibration and e/o the
// ratio form shown in Fig. 6.

#ifndef FAIRIDX_FAIRNESS_CALIBRATION_H_
#define FAIRIDX_FAIRNESS_CALIBRATION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace fairidx {

/// Aggregate calibration of a record set.
struct CalibrationStats {
  double count = 0.0;
  /// e(h): mean confidence score (0 when empty).
  double mean_score = 0.0;
  /// o(h): fraction of positive labels (0 when empty).
  double mean_label = 0.0;

  /// |e - o|; the form the paper uses everywhere except Fig. 6, because it
  /// avoids division by zero in sparse regions.
  double AbsMiscalibration() const;

  /// e / o; NaN when o == 0 (the division-by-zero case the paper warns
  /// about). Perfectly calibrated models give 1.
  double RatioCalibration() const;
};

/// Calibration over all records. Sizes must match and be non-empty.
Result<CalibrationStats> ComputeCalibration(const std::vector<double>& scores,
                                            const std::vector<int>& labels);

/// Calibration over `indices` only (e.g. one neighborhood's records).
Result<CalibrationStats> ComputeCalibrationSubset(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<size_t>& indices);

/// Per-group calibration keyed by arbitrary integer group ids.
struct GroupCalibration {
  int group = 0;
  CalibrationStats stats;
};

/// Computes calibration within each distinct value of `groups` (same length
/// as scores/labels). Output is sorted by group id.
Result<std::vector<GroupCalibration>> ComputeGroupCalibrations(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& groups);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_CALIBRATION_H_
