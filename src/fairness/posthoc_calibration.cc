#include "fairness/posthoc_calibration.h"

#include <algorithm>

namespace fairidx {
namespace {

struct GroupData {
  std::vector<double> scores;
  std::vector<int> labels;
  double score_sum = 0.0;
  double label_sum = 0.0;
};

}  // namespace

Result<NeighborhoodRecalibrator> NeighborhoodRecalibrator::Fit(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& neighborhoods,
    const std::vector<size_t>& fit_indices, const PosthocOptions& options) {
  if (scores.size() != labels.size() ||
      scores.size() != neighborhoods.size()) {
    return InvalidArgumentError("posthoc: input size mismatch");
  }
  if (fit_indices.empty()) {
    return InvalidArgumentError("posthoc: empty fit set");
  }
  if (options.min_group_size < 1) {
    return InvalidArgumentError("posthoc: min_group_size must be >= 1");
  }

  NeighborhoodRecalibrator recalibrator;
  recalibrator.options_ = options;

  std::map<int, GroupData> groups;
  GroupData global;
  for (size_t i : fit_indices) {
    if (i >= scores.size()) {
      return OutOfRangeError("posthoc: fit index out of range");
    }
    GroupData& group = groups[neighborhoods[i]];
    group.scores.push_back(scores[i]);
    group.labels.push_back(labels[i]);
    group.score_sum += scores[i];
    group.label_sum += labels[i];
    global.scores.push_back(scores[i]);
    global.labels.push_back(labels[i]);
    global.score_sum += scores[i];
    global.label_sum += labels[i];
  }

  recalibrator.global_shift_ =
      (global.label_sum - global.score_sum) /
      static_cast<double>(global.scores.size());
  if (options.method == PosthocMethod::kPlatt) {
    recalibrator.global_platt_ok_ =
        recalibrator.global_platt_.Fit(global.scores, global.labels).ok();
  }

  for (const auto& [neighborhood, group] : groups) {
    if (static_cast<int>(group.scores.size()) < options.min_group_size) {
      continue;  // Falls back to the global map.
    }
    const double shift =
        (group.label_sum - group.score_sum) /
        static_cast<double>(group.scores.size());
    if (options.method == PosthocMethod::kShift) {
      recalibrator.shifts_[neighborhood] = shift;
      continue;
    }
    // Platt needs both classes; degenerate groups fall back to shift.
    PlattScaler scaler;
    if (scaler.Fit(group.scores, group.labels).ok()) {
      recalibrator.platts_[neighborhood] = scaler;
    } else {
      recalibrator.shifts_[neighborhood] = shift;
    }
  }
  return recalibrator;
}

std::vector<double> NeighborhoodRecalibrator::Transform(
    const std::vector<double>& scores,
    const std::vector<int>& neighborhoods) const {
  std::vector<double> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    const int neighborhood = neighborhoods[i];
    const auto platt_it = platts_.find(neighborhood);
    if (platt_it != platts_.end()) {
      out[i] = platt_it->second.Transform(scores[i]);
      continue;
    }
    const auto shift_it = shifts_.find(neighborhood);
    if (shift_it != shifts_.end()) {
      out[i] = std::clamp(scores[i] + shift_it->second, 0.0, 1.0);
      continue;
    }
    // Global fallback.
    if (options_.method == PosthocMethod::kPlatt && global_platt_ok_) {
      out[i] = global_platt_.Transform(scores[i]);
    } else {
      out[i] = std::clamp(scores[i] + global_shift_, 0.0, 1.0);
    }
  }
  return out;
}

}  // namespace fairidx
