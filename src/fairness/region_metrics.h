// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Region-level fairness evaluators over GridAggregates: ENCE (Definition
// 3), disparity ranking and multi-objective residual mass computed from a
// partition's region rects with ONE batched QueryMany call, instead of the
// per-record grouping passes in ence.h / disparity_report.h or one Query
// per region. Every evaluator also has a Span<RegionAggregate> core so
// streaming overlays (DeltaGridAggregates) can reuse the arithmetic on
// aggregates they produced themselves.

#ifndef FAIRIDX_FAIRNESS_REGION_METRICS_H_
#define FAIRIDX_FAIRNESS_REGION_METRICS_H_

#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "geo/grid_aggregates.h"

namespace fairidx {

/// Region-partition ENCE (Definition 3 with regions as neighborhoods).
struct RegionEnceResult {
  /// sum_i (|N_i| / |D|) * |o(N_i) - e(N_i)| over populated regions.
  double ence = 0.0;
  /// |D|: total records across the regions.
  double total_count = 0.0;
  /// Regions holding at least one record.
  int populated_regions = 0;
};

/// ENCE from already-queried region aggregates (empty regions contribute
/// nothing, matching the record-grouping evaluator, which never sees an
/// id with zero members).
RegionEnceResult RegionEnce(Span<RegionAggregate> regions);

/// ENCE of the partition `regions` under `aggregates`, via one QueryMany.
RegionEnceResult RegionEnce(const GridAggregates& aggregates,
                            Span<CellRect> regions);

/// One region's row in a disparity ranking.
struct RegionDisparityRow {
  /// Index into the input region list.
  int region = 0;
  double population = 0.0;
  /// e(N): mean score.
  double mean_score = 0.0;
  /// o(N): mean label.
  double mean_label = 0.0;
  /// |o(N) - e(N)|.
  double abs_miscalibration = 0.0;
};

/// The `top_k` most-populated regions (population descending, region index
/// ascending on ties) with their calibration gaps — the region-partition
/// analogue of BuildDisparityReport, one QueryMany instead of per-record
/// grouping. Unpopulated regions are skipped.
std::vector<RegionDisparityRow> RegionDisparityTopK(
    const GridAggregates& aggregates, Span<CellRect> regions, int top_k);

/// Per-region |sum of residuals| (Eq. 13's inner term) in region order —
/// the multi-objective evaluator's per-partition report, one QueryMany.
std::vector<double> RegionAbsResidualMass(const GridAggregates& aggregates,
                                          Span<CellRect> regions);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_REGION_METRICS_H_
