#include "fairness/disparity_report.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "fairness/ece.h"

namespace fairidx {

Result<DisparityReport> BuildDisparityReport(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& groups, int top_k, int ece_bins) {
  if (scores.size() != labels.size() || scores.size() != groups.size()) {
    return InvalidArgumentError("disparity report: input size mismatch");
  }
  if (scores.empty()) {
    return InvalidArgumentError("disparity report: empty input");
  }
  if (top_k <= 0) {
    return InvalidArgumentError("disparity report: top_k must be positive");
  }

  std::map<int, std::vector<size_t>> members;
  for (size_t i = 0; i < groups.size(); ++i) {
    members[groups[i]].push_back(i);
  }

  // Order groups by population descending, group id ascending on ties.
  std::vector<std::pair<int, size_t>> order;  // (group, size)
  order.reserve(members.size());
  for (const auto& [group, indices] : members) {
    order.emplace_back(group, indices.size());
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  DisparityReport report;
  FAIRIDX_ASSIGN_OR_RETURN(report.overall,
                           ComputeCalibration(scores, labels));

  const size_t take = std::min<size_t>(order.size(),
                                       static_cast<size_t>(top_k));
  for (size_t k = 0; k < take; ++k) {
    const int group = order[k].first;
    const std::vector<size_t>& indices = members[group];
    FAIRIDX_ASSIGN_OR_RETURN(
        CalibrationStats stats,
        ComputeCalibrationSubset(scores, labels, indices));
    DisparityRow row;
    row.group = group;
    row.population = stats.count;
    row.ratio_calibration = stats.RatioCalibration();
    row.abs_miscalibration = stats.AbsMiscalibration();
    FAIRIDX_ASSIGN_OR_RETURN(
        row.ece,
        ExpectedCalibrationErrorSubset(scores, labels, indices, ece_bins));
    report.rows.push_back(row);
  }
  return report;
}

TablePrinter DisparityReportTable(const DisparityReport& report,
                                  int precision) {
  TablePrinter table({"rank", "group_id", "population", "ratio_e_over_o",
                      "abs_miscalibration", "ece"});
  int rank = 1;
  for (const DisparityRow& row : report.rows) {
    // Built piecewise: GCC 12's -Wrestrict misfires on
    // `"N" + std::to_string(...)` under -O3.
    std::string rank_name = "N";
    rank_name += std::to_string(rank++);
    table.AddRow({
        std::move(rank_name),
        std::to_string(row.group),
        TablePrinter::FormatDouble(row.population, 0),
        std::isnan(row.ratio_calibration)
            ? "nan"
            : TablePrinter::FormatDouble(row.ratio_calibration, precision),
        TablePrinter::FormatDouble(row.abs_miscalibration, precision),
        TablePrinter::FormatDouble(row.ece, precision),
    });
  }
  return table;
}

}  // namespace fairidx
