#include "fairness/ece.h"

#include <algorithm>
#include <cmath>

namespace fairidx {
namespace {

Status ValidateEceInputs(const std::vector<double>& scores,
                         const std::vector<int>& labels, int num_bins) {
  if (scores.size() != labels.size()) {
    return InvalidArgumentError("ECE: scores/labels size mismatch");
  }
  if (num_bins <= 0) return InvalidArgumentError("ECE: num_bins must be > 0");
  return Status::Ok();
}

// Bin index for a score; score 1.0 lands in the last bin.
size_t BinOf(double score, int num_bins) {
  const double clamped = std::clamp(score, 0.0, 1.0);
  size_t bin = static_cast<size_t>(clamped * num_bins);
  if (bin >= static_cast<size_t>(num_bins)) bin = num_bins - 1;
  return bin;
}

}  // namespace

Result<std::vector<EceBin>> EceBins(const std::vector<double>& scores,
                                    const std::vector<int>& labels,
                                    int num_bins) {
  FAIRIDX_RETURN_IF_ERROR(ValidateEceInputs(scores, labels, num_bins));
  std::vector<EceBin> bins(static_cast<size_t>(num_bins));
  for (int b = 0; b < num_bins; ++b) {
    bins[b].lower = static_cast<double>(b) / num_bins;
    bins[b].upper = static_cast<double>(b + 1) / num_bins;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    EceBin& bin = bins[BinOf(scores[i], num_bins)];
    bin.count += 1.0;
    bin.mean_score += scores[i];
    bin.mean_label += labels[i];
  }
  for (EceBin& bin : bins) {
    if (bin.count > 0.0) {
      bin.mean_score /= bin.count;
      bin.mean_label /= bin.count;
    }
  }
  return bins;
}

Result<double> ExpectedCalibrationError(const std::vector<double>& scores,
                                        const std::vector<int>& labels,
                                        int num_bins) {
  if (scores.empty()) return InvalidArgumentError("ECE: empty input");
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<EceBin> bins,
                           EceBins(scores, labels, num_bins));
  const double n = static_cast<double>(scores.size());
  double ece = 0.0;
  for (const EceBin& bin : bins) {
    if (bin.count == 0.0) continue;
    ece += (bin.count / n) * std::abs(bin.mean_label - bin.mean_score);
  }
  return ece;
}

Result<double> ExpectedCalibrationErrorSubset(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<size_t>& indices, int num_bins) {
  if (indices.empty()) return InvalidArgumentError("ECE: empty subset");
  std::vector<double> subset_scores;
  std::vector<int> subset_labels;
  subset_scores.reserve(indices.size());
  subset_labels.reserve(indices.size());
  for (size_t i : indices) {
    if (i >= scores.size()) {
      return OutOfRangeError("ECE: subset index out of range");
    }
    subset_scores.push_back(scores[i]);
    subset_labels.push_back(labels[i]);
  }
  return ExpectedCalibrationError(subset_scores, subset_labels, num_bins);
}

}  // namespace fairidx
