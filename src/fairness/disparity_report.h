// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Per-group disparity reports reproducing the paper's Figure 6: for the
// top-k most populated groups (zip codes), the calibration ratio e/o and the
// per-group ECE, alongside the near-perfect overall calibration that makes
// the per-group disparity surprising.

#ifndef FAIRIDX_FAIRNESS_DISPARITY_REPORT_H_
#define FAIRIDX_FAIRNESS_DISPARITY_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/table_printer.h"
#include "fairness/calibration.h"

namespace fairidx {

/// One group's row in the disparity report.
struct DisparityRow {
  int group = 0;
  double population = 0.0;
  /// e/o ratio calibration; NaN when the group has no positives.
  double ratio_calibration = 0.0;
  double abs_miscalibration = 0.0;
  /// ECE within the group (`ece_bins` bins).
  double ece = 0.0;
};

/// Figure-6-style report over one model's scores.
struct DisparityReport {
  /// Rows for the top-k most populated groups, ordered by population
  /// (descending, group id as tie-break).
  std::vector<DisparityRow> rows;
  /// Overall calibration over all records (not just the top-k groups).
  CalibrationStats overall;
};

/// Builds the report; `groups` uses arbitrary integer ids (zip codes).
Result<DisparityReport> BuildDisparityReport(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& groups, int top_k = 10, int ece_bins = 15);

/// Renders rows as an aligned table ("N1".."Nk" naming, as in Fig. 6).
TablePrinter DisparityReportTable(const DisparityReport& report,
                                  int precision = 4);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_DISPARITY_REPORT_H_
