#include "fairness/region_metrics.h"

#include <algorithm>

namespace fairidx {

RegionEnceResult RegionEnce(Span<RegionAggregate> regions) {
  RegionEnceResult out;
  for (const RegionAggregate& region : regions) {
    out.total_count += region.count;
    if (region.count > 0) ++out.populated_regions;
  }
  if (out.total_count <= 0) return out;
  for (const RegionAggregate& region : regions) {
    if (region.count <= 0) continue;
    out.ence += (region.count / out.total_count) * region.Miscalibration();
  }
  return out;
}

RegionEnceResult RegionEnce(const GridAggregates& aggregates,
                            Span<CellRect> regions) {
  return RegionEnce(Span<RegionAggregate>(aggregates.QueryMany(regions)));
}

std::vector<RegionDisparityRow> RegionDisparityTopK(
    const GridAggregates& aggregates, Span<CellRect> regions, int top_k) {
  const std::vector<RegionAggregate> aggs = aggregates.QueryMany(regions);
  std::vector<RegionDisparityRow> rows;
  rows.reserve(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].count <= 0) continue;
    RegionDisparityRow row;
    row.region = static_cast<int>(i);
    row.population = aggs[i].count;
    row.mean_score = aggs[i].MeanScore();
    row.mean_label = aggs[i].MeanLabel();
    row.abs_miscalibration = aggs[i].Miscalibration();
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const RegionDisparityRow& a, const RegionDisparityRow& b) {
              if (a.population != b.population) {
                return a.population > b.population;
              }
              return a.region < b.region;
            });
  if (top_k >= 0 && rows.size() > static_cast<size_t>(top_k)) {
    rows.resize(static_cast<size_t>(top_k));
  }
  return rows;
}

std::vector<double> RegionAbsResidualMass(const GridAggregates& aggregates,
                                          Span<CellRect> regions) {
  const std::vector<RegionAggregate> aggs = aggregates.QueryMany(regions);
  std::vector<double> mass;
  mass.reserve(aggs.size());
  for (const RegionAggregate& agg : aggs) {
    mass.push_back(agg.AbsResidualSum());
  }
  return mass;
}

}  // namespace fairidx
