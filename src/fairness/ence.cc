#include "fairness/ence.h"

namespace fairidx {

Result<std::vector<NeighborhoodCalibration>> EnceBreakdown(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& neighborhoods) {
  if (scores.size() != labels.size() ||
      scores.size() != neighborhoods.size()) {
    return InvalidArgumentError("ENCE: input size mismatch");
  }
  if (scores.empty()) return InvalidArgumentError("ENCE: empty input");
  FAIRIDX_ASSIGN_OR_RETURN(
      std::vector<GroupCalibration> groups,
      ComputeGroupCalibrations(scores, labels, neighborhoods));
  const double n = static_cast<double>(scores.size());
  std::vector<NeighborhoodCalibration> out;
  out.reserve(groups.size());
  for (const GroupCalibration& group : groups) {
    NeighborhoodCalibration item;
    item.neighborhood = group.group;
    item.stats = group.stats;
    item.weight = group.stats.count / n;
    out.push_back(item);
  }
  return out;
}

Result<double> Ence(const std::vector<double>& scores,
                    const std::vector<int>& labels,
                    const std::vector<int>& neighborhoods) {
  FAIRIDX_ASSIGN_OR_RETURN(std::vector<NeighborhoodCalibration> breakdown,
                           EnceBreakdown(scores, labels, neighborhoods));
  double ence = 0.0;
  for (const NeighborhoodCalibration& item : breakdown) {
    ence += item.weight * item.stats.AbsMiscalibration();
  }
  return ence;
}

Result<double> EnceSubset(const std::vector<double>& scores,
                          const std::vector<int>& labels,
                          const std::vector<int>& neighborhoods,
                          const std::vector<size_t>& indices) {
  if (indices.empty()) return InvalidArgumentError("ENCE: empty subset");
  std::vector<double> subset_scores;
  std::vector<int> subset_labels;
  std::vector<int> subset_neighborhoods;
  subset_scores.reserve(indices.size());
  subset_labels.reserve(indices.size());
  subset_neighborhoods.reserve(indices.size());
  for (size_t i : indices) {
    if (i >= scores.size()) {
      return OutOfRangeError("ENCE: subset index out of range");
    }
    subset_scores.push_back(scores[i]);
    subset_labels.push_back(labels[i]);
    subset_neighborhoods.push_back(neighborhoods[i]);
  }
  return Ence(subset_scores, subset_labels, subset_neighborhoods);
}

}  // namespace fairidx
