#include "fairness/reweighting.h"

#include <map>

namespace fairidx {

Result<std::vector<double>> ComputeReweightingWeights(
    const std::vector<int>& groups, const std::vector<int>& labels) {
  std::vector<size_t> all(groups.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return ComputeReweightingWeightsSubset(groups, labels, all);
}

Result<std::vector<double>> ComputeReweightingWeightsSubset(
    const std::vector<int>& groups, const std::vector<int>& labels,
    const std::vector<size_t>& fit_indices) {
  if (groups.size() != labels.size()) {
    return InvalidArgumentError("reweighting: groups/labels size mismatch");
  }
  if (fit_indices.empty()) {
    return InvalidArgumentError("reweighting: empty fit set");
  }

  std::map<int, double> group_count;
  double label_count[2] = {0.0, 0.0};
  std::map<std::pair<int, int>, double> joint_count;
  for (size_t i : fit_indices) {
    if (i >= groups.size()) {
      return OutOfRangeError("reweighting: fit index out of range");
    }
    if (labels[i] != 0 && labels[i] != 1) {
      return InvalidArgumentError("reweighting: labels must be 0 or 1");
    }
    group_count[groups[i]] += 1.0;
    label_count[labels[i]] += 1.0;
    joint_count[{groups[i], labels[i]}] += 1.0;
  }
  const double n = static_cast<double>(fit_indices.size());

  std::vector<double> weights(groups.size(), 1.0);
  for (size_t i : fit_indices) {
    const double p_group = group_count[groups[i]] / n;
    const double p_label = label_count[labels[i]] / n;
    const double p_joint = joint_count[{groups[i], labels[i]}] / n;
    // p_joint > 0 because record i itself is in the cell.
    weights[i] = p_group * p_label / p_joint;
  }
  return weights;
}

}  // namespace fairidx
