#include "fairness/bootstrap.h"

#include <algorithm>

#include "fairness/ence.h"

namespace fairidx {
namespace {

ConfidenceInterval IntervalFromSamples(double point,
                                       std::vector<double> samples,
                                       double confidence) {
  std::sort(samples.begin(), samples.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const size_t n = samples.size();
  const size_t lower_index =
      std::min(n - 1, static_cast<size_t>(alpha * (n - 1)));
  const size_t upper_index =
      std::min(n - 1, static_cast<size_t>((1.0 - alpha) * (n - 1)));
  ConfidenceInterval interval;
  interval.point = point;
  interval.lower = samples[lower_index];
  interval.upper = samples[upper_index];
  return interval;
}

Status ValidateBootstrapOptions(const BootstrapOptions& options) {
  if (options.replicates < 10) {
    return InvalidArgumentError("bootstrap: replicates must be >= 10");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return InvalidArgumentError("bootstrap: confidence must be in (0,1)");
  }
  return Status::Ok();
}

}  // namespace

Result<ConfidenceInterval> BootstrapEnce(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& neighborhoods, const BootstrapOptions& options) {
  FAIRIDX_RETURN_IF_ERROR(ValidateBootstrapOptions(options));
  FAIRIDX_ASSIGN_OR_RETURN(double point,
                           Ence(scores, labels, neighborhoods));
  const size_t n = scores.size();
  Rng rng(options.seed);

  std::vector<double> resampled_scores(n);
  std::vector<int> resampled_labels(n);
  std::vector<int> resampled_neighborhoods(n);
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(options.replicates));
  for (int replicate = 0; replicate < options.replicates; ++replicate) {
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = static_cast<size_t>(rng.NextBounded(n));
      resampled_scores[i] = scores[pick];
      resampled_labels[i] = labels[pick];
      resampled_neighborhoods[i] = neighborhoods[pick];
    }
    FAIRIDX_ASSIGN_OR_RETURN(
        double value,
        Ence(resampled_scores, resampled_labels, resampled_neighborhoods));
    samples.push_back(value);
  }
  return IntervalFromSamples(point, std::move(samples), options.confidence);
}

Result<ConfidenceInterval> BootstrapEnceDifference(
    const std::vector<double>& scores_a, const std::vector<double>& scores_b,
    const std::vector<int>& labels, const std::vector<int>& neighborhoods_a,
    const std::vector<int>& neighborhoods_b,
    const BootstrapOptions& options) {
  FAIRIDX_RETURN_IF_ERROR(ValidateBootstrapOptions(options));
  if (scores_a.size() != scores_b.size() ||
      scores_a.size() != labels.size() ||
      scores_a.size() != neighborhoods_a.size() ||
      scores_a.size() != neighborhoods_b.size()) {
    return InvalidArgumentError("bootstrap: input size mismatch");
  }
  FAIRIDX_ASSIGN_OR_RETURN(double point_a,
                           Ence(scores_a, labels, neighborhoods_a));
  FAIRIDX_ASSIGN_OR_RETURN(double point_b,
                           Ence(scores_b, labels, neighborhoods_b));
  const size_t n = labels.size();
  Rng rng(options.seed);

  std::vector<double> sample_scores_a(n);
  std::vector<double> sample_scores_b(n);
  std::vector<int> sample_labels(n);
  std::vector<int> sample_neighborhoods_a(n);
  std::vector<int> sample_neighborhoods_b(n);
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(options.replicates));
  for (int replicate = 0; replicate < options.replicates; ++replicate) {
    for (size_t i = 0; i < n; ++i) {
      const size_t pick = static_cast<size_t>(rng.NextBounded(n));
      sample_scores_a[i] = scores_a[pick];
      sample_scores_b[i] = scores_b[pick];
      sample_labels[i] = labels[pick];
      sample_neighborhoods_a[i] = neighborhoods_a[pick];
      sample_neighborhoods_b[i] = neighborhoods_b[pick];
    }
    FAIRIDX_ASSIGN_OR_RETURN(
        double value_a,
        Ence(sample_scores_a, sample_labels, sample_neighborhoods_a));
    FAIRIDX_ASSIGN_OR_RETURN(
        double value_b,
        Ence(sample_scores_b, sample_labels, sample_neighborhoods_b));
    samples.push_back(value_a - value_b);
  }
  return IntervalFromSamples(point_a - point_b, std::move(samples),
                             options.confidence);
}

}  // namespace fairidx
