#include "fairness/calibration.h"

#include <cmath>
#include <limits>
#include <map>

namespace fairidx {

double CalibrationStats::AbsMiscalibration() const {
  return std::abs(mean_score - mean_label);
}

double CalibrationStats::RatioCalibration() const {
  if (mean_label == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return mean_score / mean_label;
}

Result<CalibrationStats> ComputeCalibration(
    const std::vector<double>& scores, const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return InvalidArgumentError("calibration: scores/labels size mismatch");
  }
  if (scores.empty()) return InvalidArgumentError("calibration: empty input");
  CalibrationStats stats;
  stats.count = static_cast<double>(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    stats.mean_score += scores[i];
    stats.mean_label += labels[i];
  }
  stats.mean_score /= stats.count;
  stats.mean_label /= stats.count;
  return stats;
}

Result<CalibrationStats> ComputeCalibrationSubset(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<size_t>& indices) {
  if (scores.size() != labels.size()) {
    return InvalidArgumentError("calibration: scores/labels size mismatch");
  }
  CalibrationStats stats;
  for (size_t i : indices) {
    if (i >= scores.size()) {
      return OutOfRangeError("calibration: subset index out of range");
    }
    stats.count += 1.0;
    stats.mean_score += scores[i];
    stats.mean_label += labels[i];
  }
  if (stats.count > 0.0) {
    stats.mean_score /= stats.count;
    stats.mean_label /= stats.count;
  }
  return stats;
}

Result<std::vector<GroupCalibration>> ComputeGroupCalibrations(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& groups) {
  if (scores.size() != labels.size() || scores.size() != groups.size()) {
    return InvalidArgumentError("calibration: input size mismatch");
  }
  std::map<int, CalibrationStats> by_group;
  for (size_t i = 0; i < scores.size(); ++i) {
    CalibrationStats& stats = by_group[groups[i]];
    stats.count += 1.0;
    stats.mean_score += scores[i];
    stats.mean_label += labels[i];
  }
  std::vector<GroupCalibration> out;
  out.reserve(by_group.size());
  for (auto& [group, stats] : by_group) {
    stats.mean_score /= stats.count;
    stats.mean_label /= stats.count;
    out.push_back(GroupCalibration{group, stats});
  }
  return out;
}

}  // namespace fairidx
