// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Post-processing mitigation: per-neighborhood score recalibration. The
// paper's related work (Section 3) places post-processing alongside the
// indexing-time approach; this module provides the comparator used in
// bench_ablation_mitigation. Two recalibration maps are supported:
//
//  * kShift — adds the neighborhood's training calibration gap (o - e) to
//    each score; zeroes per-neighborhood training miscalibration exactly.
//  * kPlatt — per-neighborhood Platt scaling (falls back to shift when a
//    neighborhood lacks both classes).
//
// Both fit on training records only and apply to all records.

#ifndef FAIRIDX_FAIRNESS_POSTHOC_CALIBRATION_H_
#define FAIRIDX_FAIRNESS_POSTHOC_CALIBRATION_H_

#include <cstddef>
#include <map>
#include <vector>

#include "common/result.h"
#include "ml/platt.h"

namespace fairidx {

/// Recalibration map family.
enum class PosthocMethod {
  kShift,
  kPlatt,
};

/// Options for per-neighborhood recalibration.
struct PosthocOptions {
  PosthocMethod method = PosthocMethod::kShift;
  /// Neighborhoods with fewer training records fall back to the global
  /// recalibration map.
  int min_group_size = 5;
};

/// Fitted per-neighborhood recalibrator.
class NeighborhoodRecalibrator {
 public:
  /// Fits per-neighborhood maps on the training subset (`fit_indices`) of
  /// (scores, labels, neighborhoods).
  static Result<NeighborhoodRecalibrator> Fit(
      const std::vector<double>& scores, const std::vector<int>& labels,
      const std::vector<int>& neighborhoods,
      const std::vector<size_t>& fit_indices, const PosthocOptions& options);

  /// Recalibrates scores (any records; unknown neighborhoods use the
  /// global map). Output clamped to [0, 1].
  std::vector<double> Transform(const std::vector<double>& scores,
                                const std::vector<int>& neighborhoods) const;

  /// Number of neighborhoods with their own (non-fallback) map.
  int num_group_maps() const { return static_cast<int>(shifts_.size() +
                                                       platts_.size()); }

 private:
  PosthocOptions options_;
  double global_shift_ = 0.0;
  PlattScaler global_platt_;
  bool global_platt_ok_ = false;
  std::map<int, double> shifts_;
  std::map<int, PlattScaler> platts_;
};

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_POSTHOC_CALIBRATION_H_
