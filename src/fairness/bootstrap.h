// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Bootstrap confidence intervals for ENCE and for paired ENCE differences
// between two score sets over the same records. EXPERIMENTS.md uses these
// to state that the fair trees' improvements are not split noise.

#ifndef FAIRIDX_FAIRNESS_BOOTSTRAP_H_
#define FAIRIDX_FAIRNESS_BOOTSTRAP_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace fairidx {

/// A two-sided percentile confidence interval.
struct ConfidenceInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Options for bootstrap estimation.
struct BootstrapOptions {
  int replicates = 1000;
  /// Two-sided coverage (0.95 -> 2.5 / 97.5 percentiles).
  double confidence = 0.95;
  uint64_t seed = 17;
};

/// Percentile-bootstrap CI for ENCE over (scores, labels, neighborhoods):
/// records are resampled with replacement.
Result<ConfidenceInterval> BootstrapEnce(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& neighborhoods, const BootstrapOptions& options);

/// Paired CI for ENCE(scores_a) - ENCE(scores_b): both metrics are
/// evaluated on the same resampled records, so shared sampling noise
/// cancels. A CI entirely below 0 means `a` is significantly fairer.
Result<ConfidenceInterval> BootstrapEnceDifference(
    const std::vector<double>& scores_a, const std::vector<double>& scores_b,
    const std::vector<int>& labels, const std::vector<int>& neighborhoods_a,
    const std::vector<int>& neighborhoods_b,
    const BootstrapOptions& options);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_BOOTSTRAP_H_
