#include "fairness/group_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace fairidx {
namespace {

struct GroupCounts {
  double total = 0.0;
  double decided_positive = 0.0;
  double actual_positive = 0.0;
  double true_positive = 0.0;
  double false_positive = 0.0;
};

}  // namespace

Result<GroupFairnessReport> ComputeGroupFairness(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& neighborhoods, double threshold,
    int min_group_size) {
  if (scores.size() != labels.size() ||
      scores.size() != neighborhoods.size()) {
    return InvalidArgumentError("group metrics: input size mismatch");
  }
  if (scores.empty()) {
    return InvalidArgumentError("group metrics: empty input");
  }
  if (min_group_size < 1) {
    return InvalidArgumentError("group metrics: min_group_size must be >=1");
  }

  std::map<int, GroupCounts> by_group;
  double overall_positive_rate = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    GroupCounts& counts = by_group[neighborhoods[i]];
    const bool decided = scores[i] >= threshold;
    counts.total += 1.0;
    counts.decided_positive += decided ? 1.0 : 0.0;
    counts.actual_positive += labels[i];
    if (labels[i] == 1 && decided) counts.true_positive += 1.0;
    if (labels[i] == 0 && decided) counts.false_positive += 1.0;
    overall_positive_rate += decided ? 1.0 : 0.0;
  }
  overall_positive_rate /= static_cast<double>(scores.size());

  GroupFairnessReport report;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  double min_positive_rate = std::numeric_limits<double>::infinity();
  double max_positive_rate = -min_positive_rate;
  double min_tpr = min_positive_rate;
  double max_tpr = -min_positive_rate;
  double min_fpr = min_positive_rate;
  double max_fpr = -min_positive_rate;
  bool any_qualifying = false;
  bool any_tpr = false;
  bool any_fpr = false;
  double weighted_deviation = 0.0;

  for (const auto& [group, counts] : by_group) {
    GroupRates rates;
    rates.group = group;
    rates.count = counts.total;
    rates.positive_rate = counts.decided_positive / counts.total;
    const double negatives = counts.total - counts.actual_positive;
    rates.true_positive_rate =
        counts.actual_positive > 0
            ? counts.true_positive / counts.actual_positive
            : nan;
    rates.false_positive_rate =
        negatives > 0 ? counts.false_positive / negatives : nan;
    report.groups.push_back(rates);

    weighted_deviation +=
        (counts.total / static_cast<double>(scores.size())) *
        std::abs(rates.positive_rate - overall_positive_rate);

    if (counts.total < min_group_size) continue;
    any_qualifying = true;
    min_positive_rate = std::min(min_positive_rate, rates.positive_rate);
    max_positive_rate = std::max(max_positive_rate, rates.positive_rate);
    if (!std::isnan(rates.true_positive_rate)) {
      any_tpr = true;
      min_tpr = std::min(min_tpr, rates.true_positive_rate);
      max_tpr = std::max(max_tpr, rates.true_positive_rate);
    }
    if (!std::isnan(rates.false_positive_rate)) {
      any_fpr = true;
      min_fpr = std::min(min_fpr, rates.false_positive_rate);
      max_fpr = std::max(max_fpr, rates.false_positive_rate);
    }
  }

  report.statistical_parity_gap =
      any_qualifying ? max_positive_rate - min_positive_rate : 0.0;
  const double tpr_gap = any_tpr ? max_tpr - min_tpr : 0.0;
  const double fpr_gap = any_fpr ? max_fpr - min_fpr : 0.0;
  report.equalized_odds_gap = std::max(tpr_gap, fpr_gap);
  report.weighted_parity_deviation = weighted_deviation;
  return report;
}

}  // namespace fairidx
