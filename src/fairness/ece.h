// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Expected Calibration Error (Appendix A.1): scores are bucketed into M
// equal-width bins over [0, 1] and per-bin |o(B) - e(B)| is averaged with
// bin-population weights.

#ifndef FAIRIDX_FAIRNESS_ECE_H_
#define FAIRIDX_FAIRNESS_ECE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace fairidx {

/// ECE over all records with `num_bins` equal-width score bins (the paper
/// uses 15). Empty bins contribute nothing.
Result<double> ExpectedCalibrationError(const std::vector<double>& scores,
                                        const std::vector<int>& labels,
                                        int num_bins = 15);

/// ECE restricted to `indices` (e.g. one neighborhood), as in Fig. 6(b)(d).
Result<double> ExpectedCalibrationErrorSubset(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<size_t>& indices, int num_bins = 15);

/// Per-bin detail for diagnostics and tests.
struct EceBin {
  double lower = 0.0;
  double upper = 0.0;
  double count = 0.0;
  double mean_score = 0.0;
  double mean_label = 0.0;
};
Result<std::vector<EceBin>> EceBins(const std::vector<double>& scores,
                                    const std::vector<int>& labels,
                                    int num_bins = 15);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_ECE_H_
