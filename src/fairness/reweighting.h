// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Kamiran & Calders pre-processing reweighting, the paper's "Grid
// (Reweighting)" baseline (as deployed in geospatial fairness tools such as
// IBM AI Fairness 360). Each (group g, label y) pair receives weight
//
//   w(g, y) = P(g) * P(y) / P(g, y)
//
// which makes group and label statistically independent in the weighted
// training distribution.

#ifndef FAIRIDX_FAIRNESS_REWEIGHTING_H_
#define FAIRIDX_FAIRNESS_REWEIGHTING_H_

#include <vector>

#include "common/result.h"

namespace fairidx {

/// Per-record Kamiran-Calders weights for `groups` (arbitrary integer ids)
/// and binary `labels`. Sizes must match and be non-empty. Records in empty
/// (g, y) cells cannot occur by construction; every returned weight is
/// strictly positive.
Result<std::vector<double>> ComputeReweightingWeights(
    const std::vector<int>& groups, const std::vector<int>& labels);

/// Same, but only records listed in `fit_indices` contribute to (and
/// receive) weights; other positions get weight 1. Useful when weighting
/// training folds only.
Result<std::vector<double>> ComputeReweightingWeightsSubset(
    const std::vector<int>& groups, const std::vector<int>& labels,
    const std::vector<size_t>& fit_indices);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_REWEIGHTING_H_
