// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Additional group-fairness notions from the paper's related work
// (Section 3): statistical parity and equalized odds, evaluated across
// spatial neighborhoods. fairidx optimises calibration (ENCE); these
// metrics let users audit the same partitions under other definitions of
// group fairness.

#ifndef FAIRIDX_FAIRNESS_GROUP_METRICS_H_
#define FAIRIDX_FAIRNESS_GROUP_METRICS_H_

#include <vector>

#include "common/result.h"

namespace fairidx {

/// Per-neighborhood decision-rate statistics at a threshold.
struct GroupRates {
  int group = 0;
  double count = 0.0;
  /// P(decision = 1 | group): the statistical-parity quantity.
  double positive_rate = 0.0;
  /// P(decision = 1 | y = 1, group); NaN if the group has no positives.
  double true_positive_rate = 0.0;
  /// P(decision = 1 | y = 0, group); NaN if the group has no negatives.
  double false_positive_rate = 0.0;
};

/// Summary gaps across neighborhoods (max - min over groups with defined
/// rates). Smaller is fairer; 0 is parity.
struct GroupFairnessReport {
  std::vector<GroupRates> groups;  // Sorted by group id.
  /// Statistical parity: spread of positive decision rates.
  double statistical_parity_gap = 0.0;
  /// Equalized odds: max of the TPR spread and FPR spread.
  double equalized_odds_gap = 0.0;
  /// Population-weighted mean absolute deviation of positive rates from
  /// the overall rate (a size-robust parity measure).
  double weighted_parity_deviation = 0.0;
};

/// Computes per-neighborhood rates and summary gaps. Groups with fewer
/// than `min_group_size` records are excluded from the gap computations
/// (tiny groups make max-min gaps meaningless) but still listed.
Result<GroupFairnessReport> ComputeGroupFairness(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& neighborhoods, double threshold = 0.5,
    int min_group_size = 10);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_GROUP_METRICS_H_
