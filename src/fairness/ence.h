// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Expected Neighborhood Calibration Error (Definition 3), the paper's
// primary fairness metric:
//
//   ENCE = sum_i (|N_i| / |D|) * | o(N_i) - e(N_i) |
//
// over a complete, non-overlapping neighborhood partition.

#ifndef FAIRIDX_FAIRNESS_ENCE_H_
#define FAIRIDX_FAIRNESS_ENCE_H_

#include <vector>

#include "common/result.h"
#include "fairness/calibration.h"

namespace fairidx {

/// Per-neighborhood calibration detail backing an ENCE value.
struct NeighborhoodCalibration {
  int neighborhood = 0;
  CalibrationStats stats;
  /// |N_i| / |D|.
  double weight = 0.0;
};

/// ENCE over records whose neighborhood ids are `neighborhoods`. All vectors
/// must be the same non-zero length.
Result<double> Ence(const std::vector<double>& scores,
                    const std::vector<int>& labels,
                    const std::vector<int>& neighborhoods);

/// ENCE restricted to `indices` (e.g. the test split); weights are relative
/// to the subset size.
Result<double> EnceSubset(const std::vector<double>& scores,
                          const std::vector<int>& labels,
                          const std::vector<int>& neighborhoods,
                          const std::vector<size_t>& indices);

/// Per-neighborhood breakdown (sorted by neighborhood id). The weighted sum
/// of AbsMiscalibration equals Ence().
Result<std::vector<NeighborhoodCalibration>> EnceBreakdown(
    const std::vector<double>& scores, const std::vector<int>& labels,
    const std::vector<int>& neighborhoods);

}  // namespace fairidx

#endif  // FAIRIDX_FAIRNESS_ENCE_H_
