#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace fairidx {

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_workers)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Drain: a queued task may belong to a group whose owner already gave
    // up waiting (bug), but running it is still safer than dropping it.
    while (!queue_.empty()) RunOneLocked(lock);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw > 1 ? static_cast<int>(hw) - 1 : 0);
  }();
  return *pool;
}

void ThreadPool::RunOneLocked(std::unique_lock<std::mutex>& lock) {
  Task task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  task.fn();
  lock.lock();
  if (--task.group->pending_ == 0) done_cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to run.
    RunOneLocked(lock);
  }
}

void ThreadPool::TaskGroup::Spawn(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    ++pending_;
    pool_->queue_.push_back(Task{std::move(fn), this});
  }
  pool_->work_cv_.notify_one();
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(pool_->mutex_);
  while (pending_ > 0) {
    // Help with THIS group's queued tasks only. Running arbitrary queued
    // work would invert priorities (a tiny subtree wait inlining an
    // unrelated multi-second fold task that sits ahead of it in the FIFO)
    // and nest foreign stacks; restricting to own-group tasks is still
    // deadlock-free, since every task this wait depends on is either
    // queued here (we run it) or already running on some thread.
    auto it = pool_->queue_.begin();
    while (it != pool_->queue_.end() && it->group != this) ++it;
    if (it != pool_->queue_.end()) {
      Task task = std::move(*it);
      pool_->queue_.erase(it);
      lock.unlock();
      task.fn();
      lock.lock();
      if (--pending_ == 0) pool_->done_cv_.notify_all();
    } else {
      // All of this group's remaining tasks are executing on other
      // threads; sleep until one of them finishes.
      pool_->done_cv_.wait(lock);
    }
  }
}

void ThreadPool::ParallelFor(size_t n, int max_parallelism,
                             const std::function<void(size_t)>& fn) {
  if (max_parallelism <= 1 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Fixed contiguous chunks, like the pre-pool std::async drivers: the
  // work assignment (and thus any accumulation order the caller keeps per
  // index) is independent of scheduling.
  const size_t chunks = std::min(n, static_cast<size_t>(max_parallelism));
  TaskGroup group(this);
  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    group.Spawn([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (size_t i = 0; i < n / chunks; ++i) fn(i);
  group.Wait();
}

}  // namespace fairidx
