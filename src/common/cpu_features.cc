#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace fairidx {
namespace {

bool ReadForceScalarEnv() {
  const char* value = std::getenv("FAIRIDX_FORCE_SCALAR");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kScalar:
      break;
  }
  return "scalar";
}

bool ForceScalarFromEnv() {
  static const bool force = ReadForceScalarEnv();
  return force;
}

SimdTier DetectedSimdTier() {
  static const SimdTier tier = [] {
    if (ForceScalarFromEnv()) return SimdTier::kScalar;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
    if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
#endif
    return SimdTier::kScalar;
  }();
  return tier;
}

bool CrcHardwareAvailable() {
  static const bool available = [] {
    if (ForceScalarFromEnv()) return false;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("sse4.2") != 0;
#else
    return false;
#endif
  }();
  return available;
}

}  // namespace fairidx
