// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Small string helpers shared across modules.

#ifndef FAIRIDX_COMMON_STRING_UTIL_H_
#define FAIRIDX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fairidx {

/// Splits `input` at every occurrence of `delim`. "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view input);

/// Parses a double / int; returns InvalidArgument on malformed input.
Result<double> ParseDouble(std::string_view input);
Result<int> ParseInt(std::string_view input);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_STRING_UTIL_H_
