#include "common/matrix.h"

#include <cstdio>
#include <cstdlib>

namespace fairidx {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    std::fprintf(stderr, "Matrix: data size %zu != %zu x %zu\n", data_.size(),
                 rows_, cols_);
    std::abort();
  }
}

void Matrix::AppendRow(const std::vector<double>& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  if (row.size() != cols_) {
    std::fprintf(stderr, "Matrix::AppendRow: row size %zu != cols %zu\n",
                 row.size(), cols_);
    std::abort();
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

std::vector<double> Matrix::Column(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    const double* src = Row(indices[i]);
    double* dst = out.MutableRow(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Matrix::WithColumn(const std::vector<double>& column) const {
  Matrix out(rows_, cols_ + 1);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = Row(r);
    double* dst = out.MutableRow(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    dst[cols_] = column[r];
  }
  return out;
}

double Matrix::RowDot(size_t r, const std::vector<double>& w) const {
  const double* row = Row(r);
  double acc = 0.0;
  for (size_t c = 0; c < cols_; ++c) acc += row[c] * w[c];
  return acc;
}

std::string Matrix::DebugString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Matrix(%zux%zu)", rows_, cols_);
  return buf;
}

}  // namespace fairidx
