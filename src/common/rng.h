// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deterministic pseudo-random number generation. All stochastic components of
// fairidx (data generation, train/test splits, model initialisation) draw
// from Rng so that experiments are exactly reproducible from a seed.

#ifndef FAIRIDX_COMMON_RNG_H_
#define FAIRIDX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairidx {

/// xoshiro256** generator seeded via splitmix64. Deterministic across
/// platforms (unlike std::mt19937 paired with std:: distributions, whose
/// outputs are implementation-defined).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns an unbiased integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns an integer uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a standard normal deviate (Box-Muller with caching).
  double NextGaussian();

  /// Returns a normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; children with distinct tags do
  /// not correlate with the parent stream.
  Rng Fork(uint64_t tag);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_RNG_H_
