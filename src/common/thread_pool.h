// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// A reusable fixed-size thread pool with structured fork-join groups.
//
// The sweep drivers (cross-validation, height selection) and the KD-tree
// builders used to spawn std::async tasks per build; a height sweep at
// num_threads=4 paid hundreds of thread create/join cycles per run. The
// pool's workers are created once (see ThreadPool::Shared) and every
// build, fold and sweep point submits into the same queue.
//
// Deadlock safety ("work-stealing-lite"): TaskGroup::Wait does not merely
// block — while its own tasks are still queued it pops and executes them
// itself (own-group only, so a fine-grained wait never inlines unrelated
// coarse work ahead of it in the queue). A task that itself spawns a
// nested group and waits therefore always makes progress, even on a pool
// with zero workers (where each waiter executes its own group inline).
// Tasks must not throw.

#ifndef FAIRIDX_COMMON_THREAD_POOL_H_
#define FAIRIDX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fairidx {

class ThreadPool {
 public:
  /// Creates a pool with `num_workers` background threads. 0 is valid: all
  /// tasks then run on the threads that call TaskGroup::Wait.
  explicit ThreadPool(int num_workers);

  /// Joins the workers. Outstanding tasks are drained first; destroying a
  /// pool while a TaskGroup on it is still alive is a caller bug.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// The process-wide shared pool, created on first use with
  /// hardware_concurrency - 1 workers (so pool workers plus the submitting
  /// thread saturate the machine). Never destroyed: it must outlive every
  /// static-destruction-order hazard, and worker threads park on a condvar
  /// when idle.
  static ThreadPool& Shared();

  /// A set of tasks whose completion can be awaited together. Groups are
  /// cheap; create one per fork-join region.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
    /// Waits for any still-outstanding tasks.
    ~TaskGroup() { Wait(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueues `fn` for execution by a worker (or a waiting thread).
    void Spawn(std::function<void()> fn);

    /// Blocks until every task spawned on this group has finished,
    /// executing this group's still-queued tasks while it waits.
    void Wait();

   private:
    friend class ThreadPool;
    ThreadPool* pool_;
    int pending_ = 0;  // Guarded by pool_->mutex_.
  };

  /// Runs fn(i) for every i in [0, n), using at most `max_parallelism`
  /// concurrent executions (the calling thread counts as one). Blocks until
  /// all iterations finish. max_parallelism <= 1 or n < 2 runs inline, with
  /// no pool traffic.
  void ParallelFor(size_t n, int max_parallelism,
                   const std::function<void(size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void WorkerLoop();
  /// Pops one task (caller holds the lock), runs it unlocked, re-locks and
  /// signals completion.
  void RunOneLocked(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_cv_;  // Signalled on enqueue and shutdown.
  std::condition_variable done_cv_;  // Signalled when a group hits zero.
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_THREAD_POOL_H_
