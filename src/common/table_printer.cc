#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace fairidx {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        for (size_t pad = row[c].size(); pad < widths[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  for (size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace fairidx
