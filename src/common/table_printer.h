// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Aligned plain-text tables for the benchmark harness, so every bench binary
// prints the paper's figures as readable rows/series.

#ifndef FAIRIDX_COMMON_TABLE_PRINTER_H_
#define FAIRIDX_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace fairidx {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Example:
///   TablePrinter t({"height", "ENCE"});
///   t.AddRow({"4", "0.0123"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string FormatDouble(double value, int precision = 6);

  /// Renders the table with a header underline.
  void Print(std::ostream& os) const;

  /// Renders as CSV (machine-readable companion output).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_TABLE_PRINTER_H_
