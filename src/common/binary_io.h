// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Little-endian binary encoding helpers plus CRC-32, shared by the
// durability layer (service/wal.h, service/checkpoint.h) and the binary
// partition format (index/partition_io.h). Doubles are serialized as their
// raw IEEE-754 bit pattern, so a round trip is bit-exact — the property the
// recovery differential suite pins. Encoding is explicit byte shifts (not
// memcpy of host integers), so the format is identical on any host.

#ifndef FAIRIDX_COMMON_BINARY_IO_H_
#define FAIRIDX_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace fairidx {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `size` bytes.
/// Chain blocks by passing the previous return value as `seed`.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// CRC-32C (Castagnoli, reflected, polynomial 0x1EDC6F41) — the checksum
/// the WAL frames every record with. Uses the SSE4.2 crc32 instruction
/// when the CPU has it (several times faster than any table method, and
/// record checksums sit on the ingest hot path); the software fallback
/// produces identical values. Detection goes through
/// common/cpu_features.h, so FAIRIDX_FORCE_SCALAR pins the software
/// table. Seed-chainable like Crc32.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Appends fixed-width little-endian values to a growing byte string.
class BinaryWriter {
 public:
  void PutU8(uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void PutU32(uint32_t value);
  void PutI32(int32_t value) { PutU32(static_cast<uint32_t>(value)); }
  void PutU64(uint64_t value);
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  /// Raw IEEE-754 bit pattern; bit-exact round trip.
  void PutDouble(double value);
  void PutBytes(const void* data, size_t size);
  /// u64 length prefix + raw bytes.
  void PutString(const std::string& value);

  /// Bulk element writers — identical bytes to calling PutI32/PutDouble
  /// per element, but a single append on little-endian hosts. The WAL
  /// serializes every ingested batch through these on the hot path.
  void PutI32Array(const int* values, size_t count);
  void PutDoubleArray(const double* values, size_t count);

  /// Pre-size the buffer for `bytes` more output.
  void Reserve(size_t bytes) { buffer_.reserve(buffer_.size() + bytes); }

  /// Overwrites 4 already-written bytes at `offset` (little-endian) —
  /// for length/checksum headers patched after the body is serialized,
  /// so framing needs no second buffer.
  void PatchU32(size_t offset, uint32_t value);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Reads BinaryWriter output back. Every read checks the remaining length
/// and fails with DataLoss on truncation, so corrupt inputs surface as
/// errors instead of reads past the end.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit BinaryReader(const std::string& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<int32_t> ReadI32() {
    FAIRIDX_ASSIGN_OR_RETURN(const uint32_t value, ReadU32());
    return static_cast<int32_t>(value);
  }
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64() {
    FAIRIDX_ASSIGN_OR_RETURN(const uint64_t value, ReadU64());
    return static_cast<int64_t>(value);
  }
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t bytes) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_BINARY_IO_H_
