// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Minimal dense row-major matrix used as the design-matrix type across the
// ML substrate. Not a general linear-algebra library: only the operations
// the classifiers need.

#ifndef FAIRIDX_COMMON_MATRIX_H_
#define FAIRIDX_COMMON_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace fairidx {

/// Dense row-major matrix of doubles. Rows are samples, columns features.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a zero-initialised rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a matrix from row-major `data`; data.size() must equal
  /// rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r` (contiguous `cols()` doubles).
  const double* Row(size_t r) const { return data_.data() + r * cols_; }
  double* MutableRow(size_t r) { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }

  /// Appends a row; `row.size()` must equal cols() (or the matrix must be
  /// empty, in which case cols() is set from the row).
  void AppendRow(const std::vector<double>& row);

  /// Returns a copy of column `c`.
  std::vector<double> Column(size_t c) const;

  /// Returns the sub-matrix containing `indices`-selected rows, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Returns this matrix with `column` appended on the right.
  Matrix WithColumn(const std::vector<double>& column) const;

  /// Dot product of row `r` with a weight vector of size cols().
  double RowDot(size_t r, const std::vector<double>& w) const;

  /// Short debug rendering ("Matrix(3x2)").
  std::string DebugString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_MATRIX_H_
