#include "common/string_util.h"

#include <cctype>
#include <climits>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fairidx {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

Result<double> ParseDouble(std::string_view input) {
  const std::string trimmed = Trim(input);
  if (trimmed.empty()) {
    return InvalidArgumentError("empty string is not a double");
  }
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    return InvalidArgumentError("malformed double: '" + trimmed + "'");
  }
  return value;
}

Result<int> ParseInt(std::string_view input) {
  const std::string trimmed = Trim(input);
  if (trimmed.empty()) {
    return InvalidArgumentError("empty string is not an int");
  }
  char* end = nullptr;
  const long value = std::strtol(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size()) {
    return InvalidArgumentError("malformed int: '" + trimmed + "'");
  }
  if (value < INT_MIN || value > INT_MAX) {
    return OutOfRangeError("int out of range: '" + trimmed + "'");
  }
  return static_cast<int>(value);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace fairidx
