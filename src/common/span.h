// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Span<T>: a minimal read-only view over a contiguous array, standing in
// for std::span<const T> until the codebase moves to C++20. Batched APIs
// (GridAggregates::QueryMany, the region evaluators) take Span so callers
// can pass vectors, arrays or sub-ranges without copying.

#ifndef FAIRIDX_COMMON_SPAN_H_
#define FAIRIDX_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace fairidx {

/// Non-owning view of `size` consecutive const elements. The viewed data
/// must outlive the span (do not pass temporaries that die before use).
template <typename T>
class Span {
 public:
  constexpr Span() : data_(nullptr), size_(0) {}
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  // remove_cv_t: Span<const T> views a std::vector<T> (std::vector cannot
  // hold const elements, but a const view over one is fine).
  Span(const std::vector<std::remove_cv_t<T>>& v)  // NOLINT
      : data_(v.data()), size_(v.size()) {}
  template <size_t N>
  constexpr Span(const T (&array)[N])  // NOLINT(google-explicit-constructor)
      : data_(array), size_(N) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  /// The sub-view [offset, offset + count); the caller guarantees the
  /// range is within bounds.
  constexpr Span subspan(size_t offset, size_t count) const {
    return Span(data_ + offset, count);
  }

 private:
  const T* data_;
  size_t size_;
};

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_SPAN_H_
