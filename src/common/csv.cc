#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fairidx {
namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// terminating newline (or to text.size()).
Result<std::vector<std::string>> ParseRecord(std::string_view text,
                                             size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field += c;
        ++pos;
      }
      saw_any = true;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      saw_any = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      saw_any = true;
      ++pos;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      break;
    } else {
      field += c;
      saw_any = true;
      ++pos;
    }
  }
  if (in_quotes) return DataLossError("unterminated quoted CSV field");
  if (!saw_any && fields.empty()) return std::vector<std::string>{};
  fields.push_back(std::move(field));
  return fields;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

Result<size_t> CsvTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return NotFoundError("no CSV column named '" + std::string(name) + "'");
}

Result<CsvTable> ParseCsv(std::string_view text) {
  CsvTable table;
  size_t pos = 0;
  bool have_header = false;
  while (pos < text.size()) {
    FAIRIDX_ASSIGN_OR_RETURN(std::vector<std::string> record,
                             ParseRecord(text, pos));
    if (record.empty()) continue;  // Skip blank lines.
    if (!have_header) {
      table.header = std::move(record);
      have_header = true;
      continue;
    }
    if (record.size() != table.header.size()) {
      return DataLossError(
          "CSV row has " + std::to_string(record.size()) +
          " fields, header has " + std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(record));
  }
  if (!have_header) return DataLossError("CSV input has no header row");
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out += ',';
    AppendField(out, table.header[i]);
  }
  out += '\n';
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(out, row[i]);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open file for writing: " + path);
  out << WriteCsv(table);
  if (!out) return DataLossError("failed writing CSV to: " + path);
  return Status::Ok();
}

}  // namespace fairidx
