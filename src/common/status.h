// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Error handling primitives. fairidx does not use exceptions; fallible
// operations return Status (or Result<T>, see result.h).

#ifndef FAIRIDX_COMMON_STATUS_H_
#define FAIRIDX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fairidx {

/// Coarse error category, modelled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kDataLoss = 7,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value type carrying either success (`ok()`) or an error code + message.
///
/// Example:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Convenience constructors, mirroring absl's ErrInvalidArgument etc.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);

/// Propagates a non-OK status to the caller.
#define FAIRIDX_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::fairidx::Status _fairidx_status = (expr);       \
    if (!_fairidx_status.ok()) return _fairidx_status; \
  } while (0)

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_STATUS_H_
