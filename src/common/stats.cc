#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace fairidx {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 1) return 0.0;
  const double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double WeightedMean(const std::vector<double>& values,
                    const std::vector<double>& weights) {
  double sum = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i] * weights[i];
    total += weights[i];
  }
  if (total == 0.0) return 0.0;
  return sum / total;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = Clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Min(const std::vector<double>& values) {
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  return *std::max_element(values.begin(), values.end());
}

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

void RunningStats::Add(double value, double weight) {
  if (weight <= 0.0) return;
  ++count_;
  total_weight_ += weight;
  const double delta = value - mean_;
  mean_ += (weight / total_weight_) * delta;
  m2_ += weight * delta * (value - mean_);
}

double RunningStats::variance() const {
  if (total_weight_ <= 0.0) return 0.0;
  return m2_ / total_weight_;
}

}  // namespace fairidx
