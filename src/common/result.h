// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Result<T>: value-or-Status, modelled after absl::StatusOr<T>.

#ifndef FAIRIDX_COMMON_RESULT_H_
#define FAIRIDX_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fairidx {

/// Holds either a value of type `T` or a non-OK Status explaining why the
/// value is absent. Accessing `value()` on an error result aborts, so callers
/// must check `ok()` first (or use FAIRIDX_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enabling `return some_t;`).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)) {}

  /// Constructs from an error status. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      // An OK status without a value is a logic error in the caller.
      status_ = InternalError("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), returning its status on error, otherwise
/// assigning the value to `lhs`:
///   FAIRIDX_ASSIGN_OR_RETURN(Dataset data, LoadDataset(path));
#define FAIRIDX_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  FAIRIDX_ASSIGN_OR_RETURN_IMPL_(                                  \
      FAIRIDX_RESULT_CONCAT_(_fairidx_result, __LINE__), lhs, rexpr)

#define FAIRIDX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define FAIRIDX_RESULT_CONCAT_INNER_(a, b) a##b
#define FAIRIDX_RESULT_CONCAT_(a, b) FAIRIDX_RESULT_CONCAT_INNER_(a, b)

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_RESULT_H_
