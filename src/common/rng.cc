#include "common/rng.h"

#include <cmath>

namespace fairidx {
namespace {

// splitmix64 step, used for seeding and stream forking.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork(uint64_t tag) {
  // Mix the parent stream with the tag so children are independent.
  uint64_t seed = NextUint64() ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng(seed);
}

}  // namespace fairidx
