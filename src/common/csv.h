// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Minimal CSV reading/writing with quoted-field support, used by the
// dataset loaders and bench output.

#ifndef FAIRIDX_COMMON_CSV_H_
#define FAIRIDX_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fairidx {

/// A parsed CSV document: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Returns the column index for `name`, or NotFound.
  Result<size_t> ColumnIndex(std::string_view name) const;
};

/// Parses CSV text. Supports quoted fields with embedded commas/quotes
/// ("" escapes a quote) and both \n and \r\n line endings. All rows must
/// have the same number of fields as the header.
Result<CsvTable> ParseCsv(std::string_view text);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serialises a table to CSV text, quoting fields when needed.
std::string WriteCsv(const CsvTable& table);

/// Writes a table to disk; returns an error status on I/O failure.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_CSV_H_
