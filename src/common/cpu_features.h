// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Runtime CPU-feature detection shared by every dispatched kernel in the
// tree: the CRC32C WAL checksum (common/binary_io.cc) and the aggregate
// corner/integration kernels (geo/aggregate_kernels.h). Each query
// detects once, at first call, and caches the answer — the same
// static-bool shape the Crc32c dispatch has always used, now fed from
// one place so no kernel grows a private cpuid probe.
//
// FAIRIDX_FORCE_SCALAR (non-empty and not "0") pins every dispatch to
// its portable fallback. The variable is read ONCE, at the first
// detection query, matching the one-shot dispatch inits it feeds:
// flipping it after a kernel has dispatched would split the process
// between tiers mid-run. CI's forced-scalar lane exports it for the
// whole job so the fallback paths stay green on AVX2 runners.

#ifndef FAIRIDX_COMMON_CPU_FEATURES_H_
#define FAIRIDX_COMMON_CPU_FEATURES_H_

namespace fairidx {

/// The vector tiers the aggregate kernels dispatch between. FMA is
/// deliberately NOT a tier: contraction reassociates the rounding of
/// multiply-add chains, and every kernel must stay bit-identical to its
/// scalar loop.
enum class SimdTier {
  kScalar = 0,  ///< Portable C++ loops; also the FAIRIDX_FORCE_SCALAR pin.
  kSse2 = 1,    ///< 2-double lanes (baseline on x86-64).
  kAvx2 = 2,    ///< 4-double lanes.
};

/// Lower-case tier name ("scalar" / "sse2" / "avx2") for CLI output and
/// the bench JSON context field.
const char* SimdTierName(SimdTier tier);

/// True when FAIRIDX_FORCE_SCALAR was set (non-empty, not "0") at the
/// first detection query. Later environment changes have no effect.
bool ForceScalarFromEnv();

/// The vector tier this CPU supports, with the force-scalar override
/// applied. Non-x86 hosts and unknown compilers report kScalar.
SimdTier DetectedSimdTier();

/// True when Crc32c may use the SSE4.2 crc32 instruction: hardware
/// support AND not force-scalar. The software fallback produces
/// identical checksums either way.
bool CrcHardwareAvailable();

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_CPU_FEATURES_H_
