// Copyright 2026 The fairidx Authors.
// Licensed under the Apache License, Version 2.0.
//
// Summary statistics used by data generation, metrics, and tests.

#ifndef FAIRIDX_COMMON_STATS_H_
#define FAIRIDX_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace fairidx {

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population variance (divides by N); returns 0 for inputs of size < 1.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Weighted mean with non-negative weights; returns 0 if total weight is 0.
double WeightedMean(const std::vector<double>& values,
                    const std::vector<double>& weights);

/// Linear-interpolated quantile, q in [0,1]. Sorts a copy of the input.
/// Returns 0 for an empty input.
double Quantile(std::vector<double> values, double q);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Min / max over a non-empty vector.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Clamps `v` into [lo, hi].
double Clamp(double v, double lo, double hi);

/// Running mean/variance accumulator (Welford). Supports weighted updates.
class RunningStats {
 public:
  void Add(double value, double weight = 1.0);
  double mean() const { return mean_; }
  /// Population variance over the accumulated weight.
  double variance() const;
  double total_weight() const { return total_weight_; }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
  double total_weight_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace fairidx

#endif  // FAIRIDX_COMMON_STATS_H_
