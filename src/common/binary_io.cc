#include "common/binary_io.h"

#include <cstring>

#include "common/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define FAIRIDX_HAS_SSE42_CRC 1
#endif

namespace fairidx {
namespace {

// Slicing-by-8 CRC-32 tables for a reflected polynomial: table[0] is the
// classic bytewise table, table[k][i] extends it by k more zero bytes, so
// eight bytes fold in one step — ~6x the throughput of the bytewise loop
// with byte-identical checksums. Shared by the IEEE polynomial (Crc32)
// and the Castagnoli software fallback (Crc32c).
struct Crc32Tables {
  uint32_t entries[8][256];
  explicit Crc32Tables(uint32_t poly) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? poly : 0u);
      }
      entries[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        const uint32_t prev = entries[k - 1][i];
        entries[k][i] = (prev >> 8) ^ entries[0][prev & 0xFFu];
      }
    }
  }
};

uint32_t SlicedCrc(const Crc32Tables& t, const void* data, size_t size,
                   uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    // Assemble the two words explicitly (little-endian byte order) so the
    // fold is endianness-portable without unaligned loads.
    const uint32_t lo = crc ^ (static_cast<uint32_t>(bytes[0]) |
                               static_cast<uint32_t>(bytes[1]) << 8 |
                               static_cast<uint32_t>(bytes[2]) << 16 |
                               static_cast<uint32_t>(bytes[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(bytes[4]) |
                        static_cast<uint32_t>(bytes[5]) << 8 |
                        static_cast<uint32_t>(bytes[6]) << 16 |
                        static_cast<uint32_t>(bytes[7]) << 24;
    crc = t.entries[7][lo & 0xFFu] ^ t.entries[6][(lo >> 8) & 0xFFu] ^
          t.entries[5][(lo >> 16) & 0xFFu] ^ t.entries[4][lo >> 24] ^
          t.entries[3][hi & 0xFFu] ^ t.entries[2][(hi >> 8) & 0xFFu] ^
          t.entries[1][(hi >> 16) & 0xFFu] ^ t.entries[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ t.entries[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

#if defined(FAIRIDX_HAS_SSE42_CRC) && defined(__x86_64__)
// Compiled for sse4.2 regardless of the global flags; only called after a
// runtime cpuid check confirms the instruction exists.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    const uint8_t* bytes, size_t size, uint32_t crc) {
  uint64_t wide = crc;
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, sizeof(word));
    wide = _mm_crc32_u64(wide, word);
    bytes += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(wide);
  while (size > 0) {
    crc = _mm_crc32_u8(crc, *bytes);
    ++bytes;
    --size;
  }
  return crc;
}
#endif

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const Crc32Tables t(0xEDB88320u);
  return SlicedCrc(t, data, size, seed);
}

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
#if defined(FAIRIDX_HAS_SSE42_CRC) && defined(__x86_64__)
  // Shared runtime detection (common/cpu_features.h): one probe feeds
  // this dispatch and the aggregate SIMD kernels, and FAIRIDX_FORCE_SCALAR
  // pins the software table here too (identical checksums either way).
  static const bool has_sse42 = CrcHardwareAvailable();
  if (has_sse42) {
    return ~Crc32cHardware(static_cast<const uint8_t*>(data), size, ~seed);
  }
#endif
  static const Crc32Tables t(0x82F63B78u);
  return SlicedCrc(t, data, size, seed);
}

void BinaryWriter::PutU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void BinaryWriter::PutU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void BinaryWriter::PutDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutBytes(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

namespace {

// The wire format is little-endian by definition; on a little-endian host
// the in-memory representation of int32/double arrays already IS the wire
// encoding, so bulk writers can append them in one shot. Big-endian hosts
// take the per-element path — identical bytes either way.
bool LittleEndianHost() {
  const uint32_t probe = 1;
  return *reinterpret_cast<const unsigned char*>(&probe) == 1;
}

}  // namespace

void BinaryWriter::PutI32Array(const int* values, size_t count) {
  static_assert(sizeof(int) == 4, "wire format assumes 32-bit int");
  if (LittleEndianHost()) {
    buffer_.append(reinterpret_cast<const char*>(values), count * 4);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    PutI32(static_cast<int32_t>(values[i]));
  }
}

void BinaryWriter::PutDoubleArray(const double* values, size_t count) {
  if (LittleEndianHost()) {
    buffer_.append(reinterpret_cast<const char*>(values), count * 8);
    return;
  }
  for (size_t i = 0; i < count; ++i) PutDouble(values[i]);
}

void BinaryWriter::PatchU32(size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

void BinaryWriter::PutString(const std::string& value) {
  PutU64(static_cast<uint64_t>(value.size()));
  buffer_.append(value);
}

Status BinaryReader::Need(size_t bytes) const {
  if (size_ - pos_ < bytes) {
    return DataLossError("binary input truncated");
  }
  return Status::Ok();
}

Result<uint8_t> BinaryReader::ReadU8() {
  FAIRIDX_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> BinaryReader::ReadU32() {
  FAIRIDX_RETURN_IF_ERROR(Need(4));
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<uint64_t> BinaryReader::ReadU64() {
  FAIRIDX_RETURN_IF_ERROR(Need(8));
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<double> BinaryReader::ReadDouble() {
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  FAIRIDX_ASSIGN_OR_RETURN(const uint64_t size, ReadU64());
  FAIRIDX_RETURN_IF_ERROR(Need(static_cast<size_t>(size)));
  std::string out(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return out;
}

}  // namespace fairidx
